//! The bit-parallel tagging kernel — every Glushkov position of every
//! token packed into dense `u64` bitset words.
//!
//! [`BitTables`] lays all tokens' positions out in one global position
//! space (token `t` owns the contiguous bit span `offset[t]..offset[t+1]`)
//! and precomputes:
//!
//! * a 256-entry **byte→bitmask decode ROM** (`class_rom`) — the software
//!   analogue of the paper's §3.2 character decoders: one row lookup per
//!   input byte yields the candidate mask for *all* positions of *all*
//!   tokens at once (built from [`cfg_regex::Template::decode_rom`]),
//! * a matching **continuation ROM** for the Figure 7 longest-match
//!   lookahead (`cont_rom`),
//! * per-position FOLLOW/predecessor masks, per-token FIRST masks, and a
//!   global LAST mask,
//! * token-level bitsets for enables, arms and the FOLLOW relation.
//!
//! [`BitEngine`] then replaces the scalar per-position inner loop with
//! word-wide ops: `next = (follow_union(active) | first_of(enabled)) &
//! class_rom[byte]`, match detection is `next & last_mask &
//! !cont_rom[lookahead]`, and `active_any` / `is_dead` are a few word
//! compares. Only *set bits* are ever iterated (lexeme-start bookkeeping
//! and event emission), so cost tracks live positions, not table size.
//!
//! Events are byte-identical to [`crate::ScalarEngine`] and the gate
//! engine (property-tested), and the observability contract is the same:
//! metrics/probe recording hides behind cached `live_*` flags so the
//! dark path pays nothing.

use crate::event::TagEvent;
use crate::probes::TaggerProbes;
use crate::tagger::TaggerOptions;
use cfg_grammar::{Grammar, TokenId};
use cfg_hwgen::StartMode;
use cfg_obs::{Metrics, Stat, TraceEvent};
use cfg_regex::ByteSet;
use std::sync::Arc;

/// Shared bit-parallel tables for one compiled grammar.
///
/// Fields are `pub(crate)` so the wide-stepping front end
/// ([`crate::SimdEngine`]) can derive its composed ROMs and run-class
/// LUTs from the same source of truth instead of duplicating the build.
#[derive(Debug, Clone)]
pub struct BitTables {
    /// Words per global position mask (`ceil(positions/64)`).
    pub(crate) words: usize,
    /// Words per token mask (`ceil(tokens/64)`).
    pub(crate) twords: usize,
    /// Total global positions.
    pub(crate) positions: usize,
    /// Global bit offset per token (length `tokens + 1`).
    pub(crate) offset: Vec<usize>,
    /// Owning token of each global position.
    pub(crate) pos_token: Vec<u32>,
    /// Byte→candidate-positions decode ROM: 256 rows × `words`.
    pub(crate) class_rom: Vec<u64>,
    /// Byte→continuation-positions ROM: 256 rows × `words`.
    pub(crate) cont_rom: Vec<u64>,
    /// FOLLOW mask per global position (`positions` rows × `words`).
    pub(crate) follow: Vec<u64>,
    /// Predecessor mask per global position (inverted FOLLOW).
    pub(crate) pred: Vec<u64>,
    /// FIRST-position mask per token (`tokens` rows × `words`).
    pub(crate) first_masks: Vec<u64>,
    /// OR of `first_masks` over the start set (the §3.3 start pulse).
    pub(crate) start_first_mask: Vec<u64>,
    /// LAST positions, globally.
    pub(crate) last_mask: Vec<u64>,
    /// Tokens in FIRST(start), as a token bitset.
    pub(crate) start_tokens: Vec<u64>,
    /// FOLLOW(token) as token bitsets (`tokens` rows × `twords`).
    pub(crate) follower_words: Vec<u64>,
    /// FOLLOW(token) as ascending index lists — the gated probe/trace
    /// path iterates these so edge attribution matches the scalar engine.
    pub(crate) follower_lists: Vec<Vec<usize>>,
    pub(crate) delim: ByteSet,
    pub(crate) always: bool,
    pub(crate) longest: bool,
    pub(crate) error_recovery: bool,
}

impl BitTables {
    /// Build the packed tables from a compiled grammar.
    pub fn build(g: &Grammar, opts: &TaggerOptions) -> BitTables {
        let analysis = g.analyze();
        let token_count = g.tokens().len();
        let mut offset = Vec::with_capacity(token_count + 1);
        offset.push(0usize);
        for tok in g.tokens() {
            offset.push(offset.last().unwrap() + tok.pattern.template().positions.len());
        }
        let positions = *offset.last().unwrap();
        let words = positions.div_ceil(64);
        let twords = token_count.div_ceil(64).max(1);

        let mut pos_token = vec![0u32; positions];
        let mut class_rom = vec![0u64; 256 * words];
        let mut cont_rom = vec![0u64; 256 * words];
        let mut follow = vec![0u64; positions * words];
        let mut pred = vec![0u64; positions * words];
        let mut first_masks = vec![0u64; token_count * words];
        let mut last_mask = vec![0u64; words];

        let set = |mask: &mut [u64], bit: usize| mask[bit >> 6] |= 1u64 << (bit & 63);
        for (t, tok) in g.tokens().iter().enumerate() {
            let tpl = tok.pattern.template();
            let off = offset[t];
            for p in 0..tpl.positions.len() {
                pos_token[off + p] = t as u32;
            }
            // Splice the token-local ROMs (exported by cfg-regex) into
            // the global rows at this token's bit offset.
            let lw = tpl.mask_words();
            for (rom, local) in
                [(&mut class_rom, tpl.decode_rom()), (&mut cont_rom, tpl.continuation_rom())]
            {
                for b in 0..256usize {
                    for j in 0..lw {
                        let word = local[b * lw + j];
                        if word == 0 {
                            continue;
                        }
                        let base = off + (j << 6);
                        let (gw, sh) = (base >> 6, base & 63);
                        rom[b * words + gw] |= word << sh;
                        if sh != 0 && gw + 1 < words {
                            rom[b * words + gw + 1] |= word >> (64 - sh);
                        }
                    }
                }
            }
            for (p, fs) in tpl.follow.iter().enumerate() {
                for &q in fs {
                    set(&mut follow[(off + p) * words..][..words], off + q);
                    set(&mut pred[(off + q) * words..][..words], off + p);
                }
            }
            for &p in &tpl.first {
                set(&mut first_masks[t * words..][..words], off + p);
            }
            for &p in &tpl.last {
                set(&mut last_mask, off + p);
            }
        }

        let mut start_tokens = vec![0u64; twords];
        let mut start_first_mask = vec![0u64; words];
        let mut follower_words = vec![0u64; token_count * twords];
        let mut follower_lists = Vec::with_capacity(token_count);
        for t in 0..token_count {
            if analysis.start_set.contains(TokenId(t as u32)) {
                set(&mut start_tokens, t);
                for (m, &f) in start_first_mask.iter_mut().zip(&first_masks[t * words..][..words]) {
                    *m |= f;
                }
            }
            let list: Vec<usize> =
                analysis.follow_of(TokenId(t as u32)).iter().map(|f| f.index()).collect();
            for &f in &list {
                set(&mut follower_words[t * twords..][..twords], f);
            }
            follower_lists.push(list);
        }

        BitTables {
            words,
            twords,
            positions,
            offset,
            pos_token,
            class_rom,
            cont_rom,
            follow,
            pred,
            first_masks,
            start_first_mask,
            last_mask,
            start_tokens,
            follower_words,
            follower_lists,
            delim: g.delimiters(),
            always: opts.start_mode == StartMode::Always,
            longest: !opts.disable_longest_match,
            error_recovery: opts.error_recovery,
        }
    }

    /// Number of tokens.
    pub fn token_count(&self) -> usize {
        self.offset.len() - 1
    }

    /// Total Glushkov positions across all tokens.
    pub fn position_count(&self) -> usize {
        self.positions
    }

    /// Words per global position bitmask.
    pub fn mask_words(&self) -> usize {
        self.words
    }

    /// Fault-injection hook for the shadow-audit tests: a copy of the
    /// tables with the decode-ROM row for `byte` cleared, as if that
    /// one character decoder were stuck at zero. Clearing (rather than
    /// setting) guarantees an observable divergence — `next` is ANDed
    /// with the row, so every candidacy through `byte` dies. Never used
    /// on a production path.
    #[doc(hidden)]
    pub fn with_corrupted_rom_row(&self, byte: u8) -> BitTables {
        let mut t = self.clone();
        let row = byte as usize * t.words;
        t.class_rom[row..row + t.words].fill(0);
        t
    }
}

/// Streaming bit-parallel engine. Create via
/// [`crate::TokenTagger::fast_engine`]; feed byte slices, then call
/// [`BitEngine::finish`] to drain the final lookahead byte.
#[derive(Debug)]
pub struct BitEngine {
    pub(crate) tables: Arc<BitTables>,
    /// Active position bitset (valid after the last committed step).
    pub(crate) active: Vec<u64>,
    /// Scratch: next active bitset (double-buffered per byte).
    next: Vec<u64>,
    /// Scratch: first-position enables for this byte.
    first_en: Vec<u64>,
    /// Scratch: enabled-token bitset for this byte.
    enabled: Vec<u64>,
    /// Lexeme start per global position; valid where `active` is set.
    pub(crate) starts: Vec<usize>,
    next_starts: Vec<usize>,
    /// Token bitset: enables pulsed by matches on the previous byte.
    pub(crate) set_now: Vec<u64>,
    /// Token bitset: arm registers (enables held across delimiters).
    pub(crate) arm: Vec<u64>,
    /// Scratch: `(token, lexeme start)` per match this byte.
    fired: Vec<(usize, usize)>,
    /// Cached [`BitEngine::is_dead`] — lets `step` clock-gate a dead
    /// machine that has no wake-up source (see the top of `step`).
    pub(crate) dead: bool,
    pub(crate) prev_was_delim: bool,
    pub(crate) pending: Option<u8>,
    pub(crate) cursor: usize,
    pub(crate) finished: bool,
    pub(crate) metrics: Metrics,
    /// Cached `metrics.is_enabled()` — same contract as the scalar
    /// engine: a dark sink costs nothing per byte.
    pub(crate) live_stats: bool,
    was_dead: bool,
    probes: Option<Arc<TaggerProbes>>,
    pub(crate) live_probes: bool,
}

impl BitEngine {
    /// New engine over shared tables.
    pub fn new(tables: Arc<BitTables>) -> BitEngine {
        let (w, tw, p) = (tables.words, tables.twords, tables.positions);
        let mut e = BitEngine {
            active: vec![0; w],
            next: vec![0; w],
            first_en: vec![0; w],
            enabled: vec![0; tw],
            starts: vec![0; p],
            next_starts: vec![0; p],
            set_now: vec![0; tw],
            arm: vec![0; tw],
            fired: Vec::new(),
            dead: false,
            prev_was_delim: false,
            pending: None,
            cursor: 0,
            finished: false,
            metrics: Metrics::off(),
            live_stats: false,
            was_dead: false,
            probes: None,
            live_probes: false,
            tables,
        };
        e.reset();
        e
    }

    /// Attach an observability handle (builder style).
    pub fn with_metrics(mut self, metrics: Metrics) -> BitEngine {
        self.set_metrics(metrics);
        self
    }

    /// Attach circuit probes (builder style). A disabled bank is cached
    /// as off and the per-byte probe scans are skipped entirely.
    pub fn with_probes(mut self, probes: Arc<TaggerProbes>) -> BitEngine {
        self.set_probes(probes);
        self
    }

    /// In-place variant of [`BitEngine::with_metrics`] (for wrappers).
    pub(crate) fn set_metrics(&mut self, metrics: Metrics) {
        self.live_stats = metrics.is_enabled();
        self.metrics = metrics;
    }

    /// In-place variant of [`BitEngine::with_probes`] (for wrappers).
    pub(crate) fn set_probes(&mut self, probes: Arc<TaggerProbes>) {
        self.live_probes = probes.bank().is_enabled();
        self.probes = Some(probes);
    }

    /// Reset to the start-of-stream state.
    pub fn reset(&mut self) {
        self.active.iter_mut().for_each(|x| *x = 0);
        self.arm.iter_mut().for_each(|x| *x = 0);
        // The start pulse: FIRST(start) tokens are enabled for byte 0.
        self.set_now.copy_from_slice(&self.tables.start_tokens);
        self.prev_was_delim = false;
        self.pending = None;
        self.cursor = 0;
        self.finished = false;
        self.was_dead = false;
        self.dead = self.is_dead();
    }

    /// Is the machine dead — no live positions, no armed enables, and no
    /// enables set for the next byte?
    pub fn is_dead(&self) -> bool {
        self.active.iter().all(|&x| x == 0)
            && self.arm.iter().all(|&x| x == 0)
            && self.set_now.iter().all(|&x| x == 0)
    }

    /// Feed bytes; returns the events completed so far (an event is only
    /// emitted once its lookahead byte has been seen).
    pub fn feed(&mut self, bytes: &[u8]) -> Vec<TagEvent> {
        let mut events = Vec::new();
        self.feed_into(bytes, &mut events);
        events
    }

    /// Slice-first feed: append completed events to `events` without
    /// allocating a fresh vector per call.
    pub fn feed_into(&mut self, bytes: &[u8], events: &mut Vec<TagEvent>) {
        assert!(!self.finished, "feed after finish; call reset first");
        // One refcount bump per feed() call, not per byte; the window
        // walk keeps the lookahead pairing out of the per-byte path.
        let tables = Arc::clone(&self.tables);
        if let (Some(prev), Some(&first)) = (self.pending, bytes.first()) {
            self.step(&tables, prev, Some(first), events);
        }
        for pair in bytes.windows(2) {
            self.step(&tables, pair[0], Some(pair[1]), events);
        }
        if let Some(&last) = bytes.last() {
            self.pending = Some(last);
        }
        self.metrics.add(Stat::BytesIn, bytes.len() as u64);
    }

    /// Drain the final byte against a delimiter flush, exactly like the
    /// scalar engine (see [`crate::ScalarEngine::finish`]).
    pub fn finish(&mut self) -> Vec<TagEvent> {
        let mut events = Vec::new();
        self.finish_into(&mut events);
        events
    }

    /// Slice-first variant of [`BitEngine::finish`]: append the drained
    /// events to `events`.
    pub fn finish_into(&mut self, events: &mut Vec<TagEvent>) {
        let tables = Arc::clone(&self.tables);
        if let Some(prev) = self.pending.take() {
            let flush = tables.delim.iter().next().unwrap_or(b' ');
            self.step(&tables, prev, Some(flush), events);
        }
        self.finished = true;
    }

    /// Bytes processed so far (excluding the pending lookahead byte).
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// Number of currently live Glushkov positions (one popcount pass —
    /// the software reading of the circuit's stage-register activity).
    pub fn active_positions(&self) -> usize {
        self.active.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Process one byte with its lookahead; `self.cursor` indexes it.
    /// Dispatches to a monomorphic kernel for the common word counts so
    /// the compiler unrolls every word loop and keeps the masks in
    /// registers; wider grammars take [`BitEngine::step_dyn`].
    /// `pub(crate)` so the wide front end ([`crate::SimdEngine`]) can
    /// delegate candidate bytes to the exact scalar-per-byte kernel.
    pub(crate) fn step(
        &mut self,
        t: &BitTables,
        byte: u8,
        next_byte: Option<u8>,
        events: &mut Vec<TagEvent>,
    ) {
        match t.words {
            1 => self.step_w::<1>(t, byte, next_byte, events),
            2 => self.step_w::<2>(t, byte, next_byte, events),
            3 => self.step_w::<3>(t, byte, next_byte, events),
            4 => self.step_w::<4>(t, byte, next_byte, events),
            5 => self.step_w::<5>(t, byte, next_byte, events),
            6 => self.step_w::<6>(t, byte, next_byte, events),
            7 => self.step_w::<7>(t, byte, next_byte, events),
            8 => self.step_w::<8>(t, byte, next_byte, events),
            _ => self.step_dyn(t, byte, next_byte, events),
        }
    }

    /// Monomorphic step for a grammar whose position masks are exactly
    /// `W` words (≤ `64 * W` positions): the per-byte bitsets live in
    /// stack arrays, so nothing round-trips through the heap scratch
    /// vectors and every word loop unrolls. Must stay semantically
    /// identical to [`BitEngine::step_dyn`] — the wide-grammar test and
    /// the three-engine property tests hold both to one event stream.
    fn step_w<const W: usize>(
        &mut self,
        t: &BitTables,
        byte: u8,
        next_byte: Option<u8>,
        events: &mut Vec<TagEvent>,
    ) {
        debug_assert_eq!(t.words, W);
        let i = self.cursor;
        self.cursor += 1;
        let is_delim = t.delim.contains(byte);

        // Clock gating — see `step_dyn` for the circuit reading.
        if self.dead && !t.always && !t.error_recovery && !self.live_probes {
            self.prev_was_delim = is_delim;
            return;
        }

        if self.live_probes {
            self.decoder_probes(byte);
        }

        let mut active = [0u64; W];
        active.copy_from_slice(&self.active[..W]);
        let active_any = active.iter().any(|&x| x != 0);
        // §5.2 error recovery: dead machine at a token boundary
        // re-enables the start tokens.
        let recover = t.error_recovery
            && self.prev_was_delim
            && !active_any
            && self.arm.iter().all(|&x| x == 0);
        let start_enabled = t.always || recover;
        let enabled_any = self.compute_enabled(t, start_enabled);

        // next = follow_union(active): OR the FOLLOW row of every live
        // position (cost tracks live positions, not table size).
        let mut next = [0u64; W];
        if active_any {
            for (k, &aw) in active.iter().enumerate() {
                let mut word = aw;
                while word != 0 {
                    let p = (k << 6) + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let row = &t.follow[p * W..][..W];
                    for j in 0..W {
                        next[j] |= row[j];
                    }
                }
            }
        }

        // First-position enables for this byte's enabled tokens.
        let mut first_en = [0u64; W];
        if start_enabled {
            first_en.copy_from_slice(&t.start_first_mask[..W]);
        }
        if enabled_any {
            for k in 0..t.twords {
                let mut word =
                    self.enabled[k] & if start_enabled { !t.start_tokens[k] } else { !0u64 };
                while word != 0 {
                    let tok = (k << 6) + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let row = &t.first_masks[tok * W..][..W];
                    for j in 0..W {
                        first_en[j] |= row[j];
                    }
                }
            }
        }

        // Gate both through this byte's decode-ROM row.
        let rom = &t.class_rom[byte as usize * W..][..W];
        let mut new_any = 0u64;
        for k in 0..W {
            first_en[k] &= rom[k];
            next[k] = (next[k] & rom[k]) | first_en[k];
            new_any |= next[k];
        }

        self.fired.clear();
        if new_any != 0 {
            // Lexeme starts for every newly live position: min over its
            // active predecessors, or this byte for a FIRST enable.
            for (k, &nw) in next.iter().enumerate() {
                let mut word = nw;
                while word != 0 {
                    let q = (k << 6) + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let mut s = if first_en[q >> 6] >> (q & 63) & 1 == 1 { i } else { usize::MAX };
                    let prow = &t.pred[q * W..][..W];
                    for k2 in 0..W {
                        let mut pw = prow[k2] & active[k2];
                        while pw != 0 {
                            let p = (k2 << 6) + pw.trailing_zeros() as usize;
                            pw &= pw - 1;
                            s = s.min(self.starts[p]);
                        }
                    }
                    self.next_starts[q] = s;
                }
            }
            if self.live_probes {
                self.stage_probes(t, &next);
            }

            // Match detection: LAST positions whose continuation class
            // does not contain the lookahead byte (Figure 7).
            let cont =
                next_byte.filter(|_| t.longest).map(|nb| &t.cont_rom[nb as usize * W..][..W]);
            let mut cur_token = usize::MAX;
            let mut cur_start = usize::MAX;
            for k in 0..W {
                let mut word = next[k] & t.last_mask[k];
                if let Some(c) = cont {
                    word &= !c[k];
                }
                while word != 0 {
                    let q = (k << 6) + word.trailing_zeros() as usize;
                    word &= word - 1;
                    // Positions of one token are contiguous, so ascending
                    // bit order visits tokens in index order — the same
                    // event order the scalar engine produces.
                    let tok = t.pos_token[q] as usize;
                    if tok != cur_token {
                        if cur_token != usize::MAX {
                            self.fired.push((cur_token, cur_start));
                        }
                        cur_token = tok;
                        cur_start = self.next_starts[q];
                    } else {
                        cur_start = cur_start.min(self.next_starts[q]);
                    }
                }
            }
            if cur_token != usize::MAX {
                self.fired.push((cur_token, cur_start));
            }
            self.emit_fired(i, events);
        }

        // Commit position state.
        self.active[..W].copy_from_slice(&next);
        std::mem::swap(&mut self.starts, &mut self.next_starts);

        let (set_any, arm_any) = self.rebuild_enables(t, is_delim);
        self.prev_was_delim = is_delim;
        // Liveness without rescanning: dead iff no position survived the
        // ROM gate and no enable carries into the next byte.
        self.dead = new_any == 0 && set_any == 0 && arm_any == 0;

        if self.live_stats {
            self.liveness_stats(recover, i);
        }
    }

    /// General-width step — any number of position words, heap scratch.
    fn step_dyn(
        &mut self,
        t: &BitTables,
        byte: u8,
        next_byte: Option<u8>,
        events: &mut Vec<TagEvent>,
    ) {
        let i = self.cursor;
        self.cursor += 1;
        let (w, tw) = (t.words, t.twords);
        let is_delim = t.delim.contains(byte);

        // Clock gating: a dead machine with no wake-up source — no
        // Always-mode scanning, no §5.2 recovery, no lit probe bank
        // sampling decoders — cannot change state or emit an event, so
        // only the delimiter flip-flop advances. This is the software
        // mirror of the circuit's zero switching activity when every
        // stage register holds 0.
        if self.dead && !t.always && !t.error_recovery && !self.live_probes {
            self.prev_was_delim = is_delim;
            return;
        }

        // Decoder-hit probes (gated; mirrors the Figure 4/5 decode wires).
        if self.live_probes {
            self.decoder_probes(byte);
        }

        let active_any = self.active.iter().any(|&x| x != 0);
        // §5.2 error recovery: dead machine at a token boundary re-enables
        // the start tokens.
        let recover = t.error_recovery
            && self.prev_was_delim
            && !active_any
            && self.arm.iter().all(|&x| x == 0);
        let start_enabled = t.always || recover;
        let enabled_any = self.compute_enabled(t, start_enabled);

        // next = follow_union(active): OR the FOLLOW row of every live
        // position (cost tracks live positions, not table size).
        self.next.iter_mut().for_each(|x| *x = 0);
        if active_any {
            for k in 0..w {
                let mut word = self.active[k];
                while word != 0 {
                    let p = (k << 6) + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let row = &t.follow[p * w..][..w];
                    for (n, &r) in self.next.iter_mut().zip(row) {
                        *n |= r;
                    }
                }
            }
        }

        // First-position enables for this byte's enabled tokens. The
        // start set's OR is precomputed; only match-pulsed/armed tokens
        // outside it are folded in bit by bit.
        self.first_en.iter_mut().for_each(|x| *x = 0);
        if start_enabled {
            self.first_en.copy_from_slice(&t.start_first_mask);
        }
        if enabled_any {
            for k in 0..tw {
                let mut word =
                    self.enabled[k] & if start_enabled { !t.start_tokens[k] } else { !0u64 };
                while word != 0 {
                    let tok = (k << 6) + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let row = &t.first_masks[tok * w..][..w];
                    for (f, &r) in self.first_en.iter_mut().zip(row) {
                        *f |= r;
                    }
                }
            }
        }

        // Gate both through this byte's decode-ROM row.
        let rom = &t.class_rom[byte as usize * w..][..w];
        let mut new_any = 0u64;
        for ((f, n), &r) in self.first_en.iter_mut().zip(self.next.iter_mut()).zip(rom) {
            *f &= r;
            *n = (*n & r) | *f;
            new_any |= *n;
        }

        self.fired.clear();
        if new_any != 0 {
            // Lexeme starts for every newly live position: min over its
            // active predecessors, or this byte for a FIRST enable.
            for k in 0..w {
                let mut word = self.next[k];
                while word != 0 {
                    let q = (k << 6) + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let mut s =
                        if self.first_en[q >> 6] >> (q & 63) & 1 == 1 { i } else { usize::MAX };
                    let prow = &t.pred[q * w..][..w];
                    for (k2, (&pm, &am)) in prow.iter().zip(&self.active).enumerate() {
                        let mut pw = pm & am;
                        while pw != 0 {
                            let p = (k2 << 6) + pw.trailing_zeros() as usize;
                            pw &= pw - 1;
                            s = s.min(self.starts[p]);
                        }
                    }
                    self.next_starts[q] = s;
                }
            }
            // Stage-activity probes (gated): one hit per position register
            // going active this byte.
            if self.live_probes {
                self.stage_probes(t, &self.next);
            }

            // Match detection: LAST positions whose continuation class
            // does not contain the lookahead byte (Figure 7).
            let cont =
                next_byte.filter(|_| t.longest).map(|nb| &t.cont_rom[nb as usize * w..][..w]);
            let mut cur_token = usize::MAX;
            let mut cur_start = usize::MAX;
            for k in 0..w {
                let mut word = self.next[k] & t.last_mask[k];
                if let Some(c) = cont {
                    word &= !c[k];
                }
                while word != 0 {
                    let q = (k << 6) + word.trailing_zeros() as usize;
                    word &= word - 1;
                    // Positions of one token are contiguous, so ascending
                    // bit order visits tokens in index order — the same
                    // event order the scalar engine produces.
                    let tok = t.pos_token[q] as usize;
                    if tok != cur_token {
                        if cur_token != usize::MAX {
                            self.fired.push((cur_token, cur_start));
                        }
                        cur_token = tok;
                        cur_start = self.next_starts[q];
                    } else {
                        cur_start = cur_start.min(self.next_starts[q]);
                    }
                }
            }
            if cur_token != usize::MAX {
                self.fired.push((cur_token, cur_start));
            }
            self.emit_fired(i, events);
        }

        // Commit position state.
        std::mem::swap(&mut self.active, &mut self.next);
        std::mem::swap(&mut self.starts, &mut self.next_starts);

        let (set_any, arm_any) = self.rebuild_enables(t, is_delim);
        self.prev_was_delim = is_delim;
        self.dead = new_any == 0 && set_any == 0 && arm_any == 0;

        if self.live_stats {
            self.liveness_stats(recover, i);
        }
    }

    /// Decoder-hit probes (gated behind `live_probes` by the callers).
    fn decoder_probes(&self, byte: u8) {
        if let Some(pr) = &self.probes {
            for (set, idx) in &pr.decoders {
                if set.contains(byte) {
                    pr.bank().hit(*idx, 1);
                }
            }
        }
    }

    /// Stage-activity probes: one hit per position register in `next`.
    fn stage_probes(&self, t: &BitTables, next: &[u64]) {
        if let Some(pr) = &self.probes {
            for (k, &nw) in next.iter().enumerate() {
                let mut word = nw;
                while word != 0 {
                    let q = (k << 6) + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let tok = t.pos_token[q] as usize;
                    if let Some(&idx) = pr.stages[tok].get(q - t.offset[tok]) {
                        pr.bank().hit(idx, 1);
                    }
                }
            }
        }
    }

    /// Enabled tokens, word-wide; returns whether any token is enabled.
    fn compute_enabled(&mut self, t: &BitTables, start_enabled: bool) -> bool {
        let mut any = 0u64;
        for k in 0..t.twords {
            self.enabled[k] =
                self.set_now[k] | self.arm[k] | if start_enabled { t.start_tokens[k] } else { 0 };
            any |= self.enabled[k];
        }
        any != 0
    }

    /// Push this byte's matches as events, with gated metrics/probes.
    fn emit_fired(&self, i: usize, events: &mut Vec<TagEvent>) {
        for &(tok, start) in &self.fired {
            events.push(TagEvent { token: TokenId(tok as u32), start, end: i + 1 });
            if self.live_stats {
                self.metrics.token_fire(tok as u32, 1);
                self.metrics.trace(|| {
                    TraceEvent::new("token_fire")
                        .field("token", tok as u32)
                        .field("start", start)
                        .field("end", i + 1)
                });
            }
            if self.live_probes {
                if let Some(pr) = &self.probes {
                    pr.bank().hit(pr.fire[tok], 1);
                }
            }
        }
    }

    /// Rebuild the next byte's enables from this byte's matches and hold
    /// this byte's enables across delimiters in the arm registers.
    /// Returns the OR over `set_now` and over `arm` (for the dead test).
    fn rebuild_enables(&mut self, t: &BitTables, is_delim: bool) -> (u64, u64) {
        let tw = t.twords;
        self.set_now.iter_mut().for_each(|x| *x = 0);
        let gated = self.live_probes || self.live_stats;
        for mi in 0..self.fired.len() {
            let u = self.fired[mi].0;
            if gated {
                // List path: identical iteration order (and so identical
                // probe/trace attribution) to the scalar engine.
                for (k, &f) in t.follower_lists[u].iter().enumerate() {
                    self.set_now[f >> 6] |= 1u64 << (f & 63);
                    if self.live_probes {
                        if let Some(pr) = &self.probes {
                            if let Some(&idx) = pr.edges[u].get(k) {
                                pr.bank().hit(idx, 1);
                            }
                        }
                    }
                    if self.live_stats {
                        self.metrics.trace(|| {
                            TraceEvent::new("follow_edge").field("from", u).field("to", f)
                        });
                    }
                }
            } else {
                let row = &t.follower_words[u * tw..][..tw];
                for (s, &r) in self.set_now.iter_mut().zip(row) {
                    *s |= r;
                }
            }
        }
        let mut set_any = 0u64;
        for &s in &self.set_now {
            set_any |= s;
        }
        let mut arm_any = 0u64;
        for k in 0..tw {
            self.arm[k] = if is_delim { self.enabled[k] } else { 0 };
            arm_any |= self.arm[k];
        }
        (set_any, arm_any)
    }

    /// Liveness accounting (§5.2), only under an enabled sink; reads the
    /// freshly committed `self.dead`.
    fn liveness_stats(&mut self, recover: bool, i: usize) {
        let alive = !self.dead;
        if recover && alive {
            self.metrics.add(Stat::Resyncs, 1);
            self.metrics.trace(|| TraceEvent::new("resync").field("at", i));
        }
        if !alive && !self.was_dead {
            self.metrics.add(Stat::DeadEntries, 1);
            self.metrics.trace(|| TraceEvent::new("dead_entry").field("at", i));
        }
        self.was_dead = !alive;
    }
}

#[cfg(test)]
mod tests {
    use crate::tagger::{StartMode, TaggerOptions, TokenTagger};
    use cfg_grammar::{builtin, Grammar};

    #[test]
    fn rom_rows_match_position_classes() {
        let g = builtin::if_then_else();
        let t = TokenTagger::compile(&g, TaggerOptions::default()).unwrap();
        let bt = t.bit_tables();
        let w = bt.mask_words();
        for (tok_idx, tok) in t.grammar().tokens().iter().enumerate() {
            let tpl = tok.pattern.template();
            let off = bt.offset[tok_idx];
            for (p, class) in tpl.positions.iter().enumerate() {
                for b in 0..=255u8 {
                    let gp = off + p;
                    let bit = bt.class_rom[b as usize * w + (gp >> 6)] >> (gp & 63) & 1;
                    assert_eq!(bit == 1, class.contains(b), "token {tok_idx} pos {p} byte {b}");
                }
            }
        }
    }

    #[test]
    fn streaming_matches_batch_and_scalar() {
        let g = builtin::if_then_else();
        let t = TokenTagger::compile(&g, TaggerOptions::default()).unwrap();
        let input = b"if true then go else stop";
        let batch = t.tag_fast(input);
        let mut scalar = t.scalar_engine();
        let mut expect = scalar.feed(input);
        expect.extend(scalar.finish());
        assert_eq!(batch, expect);

        for chunk in [1usize, 2, 3, 7] {
            let mut e = t.fast_engine();
            let mut events = Vec::new();
            for c in input.chunks(chunk) {
                events.extend(e.feed(c));
            }
            events.extend(e.finish());
            assert_eq!(events, batch, "chunk size {chunk}");
        }
    }

    #[test]
    fn agrees_with_scalar_on_modes_and_junk() {
        let g = builtin::if_then_else();
        for (always, recover) in [(false, false), (true, false), (false, true), (true, true)] {
            let opts = TaggerOptions::builder()
                .start_mode(if always { StartMode::Always } else { StartMode::AtStart })
                .error_recovery(recover)
                .build();
            let t = TokenTagger::compile(&g, opts).unwrap();
            for input in [
                &b"if true then go else stop"[..],
                b"zzz go zzz",
                b"gogo if  stop",
                b"",
                b"then then then",
            ] {
                let mut scalar = t.scalar_engine();
                let mut expect = scalar.feed(input);
                expect.extend(scalar.finish());
                let got = t.tag_fast(input);
                assert_eq!(got, expect, "always={always} recover={recover} input={input:?}");
                assert_eq!(
                    {
                        let mut e = t.fast_engine();
                        e.feed(input);
                        let _ = e.finish();
                        e.is_dead()
                    },
                    scalar.is_dead(),
                    "dead state diverges on {input:?}"
                );
            }
        }
    }

    #[test]
    fn repeated_list_items_and_reset() {
        let g = Grammar::parse(
            r#"
            %%
            list: "<l>" item "</l>";
            item: | "<i>" "</i>" item;
            %%
            "#,
        )
        .unwrap();
        let t = TokenTagger::compile(&g, TaggerOptions::default()).unwrap();
        let input = b"<l><i></i><i></i></l>";
        let names: Vec<&str> = t.tag_fast(input).iter().map(|e| t.token_name(e.token)).collect();
        assert_eq!(names, ["<l>", "<i>", "</i>", "<i>", "</i>", "</l>"]);

        let mut e = t.fast_engine();
        let mut ev1 = e.feed(input);
        ev1.extend(e.finish());
        e.reset();
        let mut ev2 = e.feed(input);
        ev2.extend(e.finish());
        assert_eq!(ev1, ev2);
    }

    #[test]
    fn wide_grammar_takes_the_dynamic_path() {
        // More than 8 * 64 positions forces the general (`step_dyn`)
        // kernel; it must produce the scalar engine's exact event stream
        // just like the monomorphic kernels do.
        let lit: String = (0..600).map(|i| (b'a' + (i % 26) as u8) as char).collect();
        let text = format!("LONG {lit}\nGO go\n%%\ns: LONG GO;\n%%\n");
        let g = Grammar::parse(&text).unwrap();
        let t = TokenTagger::compile(&g, TaggerOptions::default()).unwrap();
        assert!(t.bit_tables().mask_words() > 8, "grammar too narrow to hit step_dyn");

        let input = format!("{lit} go");
        let mut scalar = t.scalar_engine();
        let mut expect = scalar.feed(input.as_bytes());
        expect.extend(scalar.finish());
        assert_eq!(expect.len(), 2, "LONG then GO");
        assert_eq!(t.tag_fast(input.as_bytes()), expect);
        for chunk in [1usize, 13] {
            let mut e = t.fast_engine();
            let mut events = Vec::new();
            for c in input.as_bytes().chunks(chunk) {
                events.extend(e.feed(c));
            }
            events.extend(e.finish());
            assert_eq!(events, expect, "chunk size {chunk}");
        }
    }

    #[test]
    #[should_panic(expected = "feed after finish")]
    fn feed_after_finish_panics() {
        let g = builtin::if_then_else();
        let t = TokenTagger::compile(&g, TaggerOptions::default()).unwrap();
        let mut e = t.fast_engine();
        let _ = e.finish();
        let _ = e.feed(b"go");
    }
}
