//! Frame spans: stage-attributed latency for the serving path.
//!
//! A [`Span`] is born when the server's reader accepts a frame and dies
//! when the ack (or error) has been written. In between, each serving
//! stage leaves one monotonic stamp — nanoseconds since the span
//! started — so the frame's end-to-end latency decomposes *exactly*
//! into per-stage durations: stage `i`'s duration is the difference
//! between its stamp and the previous stamped stage, and the durations
//! telescope back to the final stamp. There is no way to record a span
//! whose stages disagree with its total.
//!
//! The [`SpanRecorder`] keeps a fixed-size ring of recent spans for
//! `/spans.jsonl`. Retention is head-sampled — the sampling decision is
//! made at [`SpanRecorder::begin`], deterministically, from a counter —
//! with one escape hatch: a span whose end-to-end latency breaches the
//! slow threshold is always retained, so the ring never misses the
//! frames an operator actually wants to see.
//!
//! Like the rest of cfg-obs, the layer is zero-overhead when off: a
//! server without tracing configured holds no recorder and threads
//! `Option<Span>::None` through the stack — no `Instant::now()` calls,
//! no allocation, nothing but a never-taken branch per frame.

use crate::json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The serving stages a frame passes through, in pipeline order.
///
/// Stage durations are attributed *between consecutive stamps*, so the
/// order here is the order stamps must be (and are) taken in. Stages a
/// frame never reaches (e.g. a shed frame never sees `Engine`) simply
/// stay unstamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Socket bytes buffered until the frame was complete.
    FrameRead,
    /// Frame decoded and the pool message built.
    Parse,
    /// Session touched and its in-flight counter bumped.
    SessionLookup,
    /// Message offered to (and accepted by) a shard queue.
    Enqueue,
    /// Time spent queued before a worker picked the message up.
    QueueWait,
    /// Engine feed + finish on the worker.
    Engine,
    /// Ack (or error) frame written back to the client.
    AckWrite,
}

impl Stage {
    /// Number of stages (sizes the stamp array in [`Span`]).
    pub const COUNT: usize = 7;

    /// All stages, in pipeline (and index) order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::FrameRead,
        Stage::Parse,
        Stage::SessionLookup,
        Stage::Enqueue,
        Stage::QueueWait,
        Stage::Engine,
        Stage::AckWrite,
    ];

    /// Stable snake_case name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Stage::FrameRead => "frame_read",
            Stage::Parse => "parse",
            Stage::SessionLookup => "session_lookup",
            Stage::Enqueue => "enqueue",
            Stage::QueueWait => "queue_wait",
            Stage::Engine => "engine",
            Stage::AckWrite => "ack_write",
        }
    }
}

/// Sentinel for "this stage was never stamped".
const UNSET: u64 = u64::MAX;

/// One frame's trip through the serving stack.
///
/// Stamps are nanoseconds since the span started (plus an optional
/// *lead* — time that passed before the span object existed, e.g. the
/// socket reads that buffered the frame). Stamps are first-write-wins
/// and clamped non-decreasing, so a recorded span is well-formed by
/// construction: [`Span::stage_ns`] values are non-negative and sum to
/// [`Span::total_ns`] exactly.
#[derive(Debug, Clone)]
pub struct Span {
    id: u64,
    sampled: bool,
    started: Instant,
    lead_ns: u64,
    stamps: [u64; Stage::COUNT],
    session: u64,
    seq: u64,
}

impl Span {
    fn new(id: u64, sampled: bool, lead_ns: u64) -> Span {
        Span {
            id,
            sampled,
            started: Instant::now(),
            lead_ns,
            stamps: [UNSET; Stage::COUNT],
            session: 0,
            seq: 0,
        }
    }

    /// A detached span (id 0, sampled) for tests and one-off timing.
    pub fn detached() -> Span {
        Span::new(0, true, 0)
    }

    /// Head-sampling verdict made at [`SpanRecorder::begin`]. When
    /// false, the span still feeds the SLO histograms but is only
    /// retained in the ring if it turns out slow.
    pub fn sampled(&self) -> bool {
        self.sampled
    }

    /// The recorder-assigned span id (its begin-order index).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attach the session id and frame sequence number for JSON output.
    pub fn set_ids(&mut self, session: u64, seq: u64) {
        self.session = session;
        self.seq = seq;
    }

    /// Nanoseconds since the span started, including the lead.
    fn elapsed_ns(&self) -> u64 {
        let e = self.started.elapsed().as_nanos();
        self.lead_ns.saturating_add(u64::try_from(e).unwrap_or(u64::MAX))
    }

    /// Stamp `stage` as ending now. First write wins, and the stamp is
    /// clamped to be no earlier than any existing stamp, so stamps are
    /// non-decreasing in stage order no matter how threads interleave.
    pub fn stamp(&mut self, stage: Stage) {
        self.stamp_at(stage, self.elapsed_ns());
    }

    /// Stamp `stage` at an explicit offset (nanoseconds since span
    /// start) — the deterministic entry point the unit tests use.
    pub fn stamp_at(&mut self, stage: Stage, at_ns: u64) {
        if self.stamps[stage as usize] != UNSET {
            return;
        }
        let floor = self.last_stamp_ns();
        self.stamps[stage as usize] = at_ns.max(floor);
    }

    /// The latest stamp taken so far (0 if none).
    fn last_stamp_ns(&self) -> u64 {
        self.stamps.iter().filter(|&&s| s != UNSET).max().copied().unwrap_or(0)
    }

    /// Duration attributed to `stage`: its stamp minus the previous
    /// stamped stage's stamp. `None` if the stage was never reached.
    pub fn stage_ns(&self, stage: Stage) -> Option<u64> {
        let end = self.stamps[stage as usize];
        if end == UNSET {
            return None;
        }
        let start = self.stamps[..stage as usize]
            .iter()
            .filter(|&&s| s != UNSET)
            .max()
            .copied()
            .unwrap_or(0);
        Some(end - start)
    }

    /// End-to-end latency: the last stamp taken. Because stage
    /// durations telescope, the stamped [`Span::stage_ns`] values sum
    /// to exactly this.
    pub fn total_ns(&self) -> u64 {
        self.last_stamp_ns()
    }

    /// Whether the stamps are non-decreasing in stage order (always
    /// true by construction; the chaos test asserts it anyway).
    pub fn is_well_formed(&self) -> bool {
        let mut floor = 0u64;
        for &s in &self.stamps {
            if s == UNSET {
                continue;
            }
            if s < floor {
                return false;
            }
            floor = s;
        }
        true
    }

    /// One JSONL line: ids, the total, and every stamped stage's
    /// attributed duration.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"id\":");
        out.push_str(&self.id.to_string());
        out.push_str(",\"session\":");
        out.push_str(&self.session.to_string());
        out.push_str(",\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"sampled\":");
        out.push_str(if self.sampled { "true" } else { "false" });
        out.push_str(",\"total_ns\":");
        out.push_str(&self.total_ns().to_string());
        out.push_str(",\"stages\":{");
        let mut first = true;
        for stage in Stage::ALL {
            if let Some(ns) = self.stage_ns(stage) {
                if !first {
                    out.push(',');
                }
                first = false;
                json::push_str(&mut out, stage.name());
                out.push(':');
                out.push_str(&ns.to_string());
            }
        }
        out.push_str("}}");
        out
    }
}

/// Hands out spans and keeps a bounded ring of the retained ones.
///
/// `begin` is the only clock-touching call on the hot path besides the
/// stamps themselves; everything else is a counter bump. The retention
/// rule at [`SpanRecorder::record`]: head-sampled spans always, plus
/// any span at or over the slow threshold (`slow_ns`, 0 disables the
/// escape hatch).
pub struct SpanRecorder {
    sample_every: u64,
    slow_ns: u64,
    capacity: usize,
    counter: AtomicU64,
    recorded: AtomicU64,
    retained: AtomicU64,
    slow_extras: AtomicU64,
    ring: Mutex<VecDeque<Span>>,
}

impl SpanRecorder {
    /// A recorder retaining every `sample_every`-th span (plus slow
    /// ones) in a ring of `capacity` spans.
    pub fn new(capacity: usize, sample_every: u64, slow_ns: u64) -> SpanRecorder {
        SpanRecorder {
            sample_every: sample_every.max(1),
            slow_ns,
            capacity,
            counter: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            retained: AtomicU64::new(0),
            slow_extras: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Start a span for the next frame. The head-sampling decision is
    /// made here, deterministically: span `n` is sampled iff
    /// `n % sample_every == 0`.
    pub fn begin(&self) -> Span {
        self.begin_with_lead(0)
    }

    /// Like [`SpanRecorder::begin`], but back-dates the span by
    /// `lead_ns` — time already spent on the frame (socket reads)
    /// before the span object existed.
    pub fn begin_with_lead(&self, lead_ns: u64) -> Span {
        let id = self.counter.fetch_add(1, Ordering::Relaxed);
        Span::new(id, id.is_multiple_of(self.sample_every), lead_ns)
    }

    /// Finish a span: decide retention and (maybe) push it into the
    /// ring. Returns whether the span was retained.
    pub fn record(&self, span: &Span) -> bool {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let slow = self.slow_ns > 0 && span.total_ns() >= self.slow_ns;
        if !span.sampled && !slow {
            return false;
        }
        self.retained.fetch_add(1, Ordering::Relaxed);
        if !span.sampled {
            self.slow_extras.fetch_add(1, Ordering::Relaxed);
        }
        if self.capacity == 0 {
            return true;
        }
        let mut ring = self.ring.lock().expect("span ring lock");
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(span.clone());
        true
    }

    /// Spans started (every `begin`, retained or not).
    pub fn started(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// Spans finished via [`SpanRecorder::record`].
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans retained (head-sampled or slow).
    pub fn retained(&self) -> u64 {
        self.retained.load(Ordering::Relaxed)
    }

    /// Retained spans that were *not* head-sampled — kept only because
    /// they breached the slow threshold.
    pub fn slow_extras(&self) -> u64 {
        self.slow_extras.load(Ordering::Relaxed)
    }

    /// The retained spans as JSON lines, oldest first.
    pub fn spans_jsonl(&self) -> String {
        let ring = self.ring.lock().expect("span ring lock");
        let mut out = String::new();
        for span in ring.iter() {
            out.push_str(&span.to_json());
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("capacity", &self.capacity)
            .field("sample_every", &self.sample_every)
            .field("slow_ns", &self.slow_ns)
            .field("started", &self.started())
            .field("retained", &self.retained())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn stage_names_are_unique_and_indexed() {
        let mut seen = std::collections::HashSet::new();
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i);
            assert!(seen.insert(s.name()));
        }
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
    }

    #[test]
    fn stage_durations_telescope_to_total() {
        let mut span = Span::detached();
        span.stamp_at(Stage::FrameRead, 100);
        span.stamp_at(Stage::Parse, 150);
        span.stamp_at(Stage::SessionLookup, 160);
        span.stamp_at(Stage::Enqueue, 200);
        span.stamp_at(Stage::QueueWait, 900);
        span.stamp_at(Stage::Engine, 1_100);
        span.stamp_at(Stage::AckWrite, 1_500);
        assert_eq!(span.stage_ns(Stage::FrameRead), Some(100));
        assert_eq!(span.stage_ns(Stage::Parse), Some(50));
        assert_eq!(span.stage_ns(Stage::QueueWait), Some(700));
        assert_eq!(span.total_ns(), 1_500);
        let sum: u64 = Stage::ALL.iter().filter_map(|&s| span.stage_ns(s)).sum();
        assert_eq!(sum, span.total_ns(), "stage durations must sum to end-to-end");
        assert!(span.is_well_formed());
    }

    #[test]
    fn skipped_stages_attribute_to_the_next_stamp() {
        // A frame that sheds never reaches Engine/AckWrite; a stamp
        // after a gap attributes the whole gap to itself.
        let mut span = Span::detached();
        span.stamp_at(Stage::FrameRead, 10);
        span.stamp_at(Stage::QueueWait, 500);
        assert_eq!(span.stage_ns(Stage::Parse), None);
        assert_eq!(span.stage_ns(Stage::QueueWait), Some(490));
        assert_eq!(span.total_ns(), 500);
        let sum: u64 = Stage::ALL.iter().filter_map(|&s| span.stage_ns(s)).sum();
        assert_eq!(sum, span.total_ns());
    }

    #[test]
    fn stamps_are_first_write_wins_and_monotonic() {
        let mut span = Span::detached();
        span.stamp_at(Stage::Parse, 100);
        span.stamp_at(Stage::Parse, 999);
        assert_eq!(span.stage_ns(Stage::Parse), Some(100), "first write wins");
        // A later stage stamped with an earlier clock value clamps up.
        span.stamp_at(Stage::Engine, 40);
        assert_eq!(span.stage_ns(Stage::Engine), Some(0));
        assert_eq!(span.total_ns(), 100);
        assert!(span.is_well_formed());
    }

    #[test]
    fn lead_backdates_the_first_stamp() {
        let recorder = SpanRecorder::new(8, 1, 0);
        let mut span = recorder.begin_with_lead(5_000);
        span.stamp(Stage::FrameRead);
        assert!(span.stage_ns(Stage::FrameRead).unwrap() >= 5_000, "lead is part of frame_read");
    }

    #[test]
    fn sampling_is_deterministic() {
        let recorder = SpanRecorder::new(64, 3, 0);
        let sampled: Vec<bool> = (0..9).map(|_| recorder.begin().sampled()).collect();
        assert_eq!(
            sampled,
            vec![true, false, false, true, false, false, true, false, false],
            "every 3rd span is head-sampled, starting at 0"
        );
        assert_eq!(recorder.started(), 9);
    }

    #[test]
    fn ring_retains_sampled_and_slow_spans_only() {
        let recorder = SpanRecorder::new(64, 2, 1_000);
        // Span 0: sampled, fast → retained.
        let mut s0 = recorder.begin();
        s0.stamp_at(Stage::AckWrite, 10);
        assert!(recorder.record(&s0));
        // Span 1: unsampled, fast → dropped.
        let mut s1 = recorder.begin();
        s1.stamp_at(Stage::AckWrite, 10);
        assert!(!recorder.record(&s1));
        // Span 3 (unsampled) but slow → the escape hatch retains it.
        let _ = recorder.begin();
        let mut s3 = recorder.begin();
        assert!(!s3.sampled());
        s3.stamp_at(Stage::AckWrite, 5_000);
        assert!(recorder.record(&s3));
        assert_eq!(recorder.recorded(), 3);
        assert_eq!(recorder.retained(), 2);
        assert_eq!(recorder.slow_extras(), 1);
        assert_eq!(recorder.spans_jsonl().lines().count(), 2);
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let recorder = SpanRecorder::new(2, 1, 0);
        for i in 0..5u64 {
            let mut s = recorder.begin();
            s.stamp_at(Stage::AckWrite, 10 * (i + 1));
            recorder.record(&s);
        }
        let jsonl = recorder.spans_jsonl();
        let ids: Vec<u64> = jsonl
            .lines()
            .map(|l| Json::parse(l).unwrap().get("id").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(ids, vec![3, 4], "ring keeps the most recent spans");
    }

    #[test]
    fn span_json_round_trips() {
        let recorder = SpanRecorder::new(4, 1, 0);
        let mut span = recorder.begin();
        span.set_ids(42, 7);
        span.stamp_at(Stage::FrameRead, 100);
        span.stamp_at(Stage::Engine, 300);
        let v = Json::parse(&span.to_json()).unwrap();
        assert_eq!(v.get("session").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("seq").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("sampled").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("total_ns").unwrap().as_u64(), Some(300));
        let stages = v.get("stages").unwrap();
        assert_eq!(stages.get("frame_read").unwrap().as_u64(), Some(100));
        assert_eq!(stages.get("engine").unwrap().as_u64(), Some(200));
        assert!(stages.get("parse").is_none());
    }
}
