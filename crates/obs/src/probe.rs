//! The probe bank: dense atomic counters addressed by stable probe ids.
//!
//! Where [`crate::StatsSink`] aggregates *engine*-level activity, a
//! [`ProbeBank`] watches individual *circuit elements* — one counter per
//! character decoder, tokenizer pipeline stage, and FOLLOW enable edge
//! of the synthesized tagger. Probe ids are strings minted by the
//! topology builder (`circuit.json`); indices into the bank are dense
//! `u32`s so the hot path is a bounds check plus one relaxed
//! `fetch_add`.
//!
//! Like the sink layer, the bank is zero-overhead-when-off: engines
//! cache [`ProbeBank::is_enabled`] at attach time and skip every probe
//! update when the bank is disabled.

use crate::json;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A fixed set of named activity counters over a synthesized circuit.
///
/// Construction fixes the id set (ids come from the circuit topology,
/// in topology order); recording is lock-free. Clone the
/// `Arc<ProbeBank>` freely — all clones see the same counters.
#[derive(Debug)]
pub struct ProbeBank {
    ids: Vec<String>,
    index: HashMap<String, u32>,
    counts: Vec<AtomicU64>,
    enabled: AtomicBool,
}

impl ProbeBank {
    /// A bank over the given probe ids, enabled by default. Duplicate
    /// ids keep the first index (later duplicates still get a counter,
    /// but [`ProbeBank::probe`] resolves to the first).
    pub fn new(ids: Vec<String>) -> ProbeBank {
        let mut index = HashMap::with_capacity(ids.len());
        for (i, id) in ids.iter().enumerate() {
            index.entry(id.clone()).or_insert(i as u32);
        }
        let counts = ids.iter().map(|_| AtomicU64::new(0)).collect();
        ProbeBank { ids, index, counts, enabled: AtomicBool::new(true) }
    }

    /// Whether probes should be recorded. Engines read this once at
    /// attach time and cache the answer next to their hot loop.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable recording. Disabling does not clear counts.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Resolve a probe id to its dense index (build-time lookup only —
    /// the hot path works in indices).
    pub fn probe(&self, id: &str) -> Option<u32> {
        self.index.get(id).copied()
    }

    /// Record `n` activations of probe `idx`. Out-of-range indices are
    /// ignored (a bank rebuilt from a stale topology must not panic an
    /// engine mid-stream).
    #[inline]
    pub fn hit(&self, idx: u32, n: u64) {
        if let Some(c) = self.counts.get(idx as usize) {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Number of probes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the bank has no probes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The id of probe `i`.
    pub fn id(&self, i: u32) -> Option<&str> {
        self.ids.get(i as usize).map(String::as_str)
    }

    /// All probe ids, in topology order.
    pub fn ids(&self) -> &[String] {
        &self.ids
    }

    /// Current count of probe `idx` (0 if out of range).
    pub fn count(&self, idx: u32) -> u64 {
        self.counts.get(idx as usize).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// A point-in-time copy of every counter, in topology order.
    pub fn counts(&self) -> Vec<u64> {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Encode as one JSON object:
    /// `{"enabled":true,"probes":[{"id":"...","count":N},...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + 32 * self.ids.len());
        out.push_str("{\"enabled\":");
        out.push_str(if self.is_enabled() { "true" } else { "false" });
        out.push_str(",\"probes\":[");
        for (i, id) in self.ids.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            json::push_str(&mut out, id);
            out.push_str(",\"count\":");
            out.push_str(&self.counts[i].load(Ordering::Relaxed).to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_resolve_and_count() {
        let bank =
            ProbeBank::new(vec!["dec/i".into(), "tok/if/fire".into(), "follow/if->true".into()]);
        assert_eq!(bank.len(), 3);
        assert!(!bank.is_empty());
        assert_eq!(bank.probe("tok/if/fire"), Some(1));
        assert_eq!(bank.probe("missing"), None);
        assert_eq!(bank.id(2), Some("follow/if->true"));
        bank.hit(1, 3);
        bank.hit(1, 1);
        bank.hit(99, 7); // out of range: ignored
        assert_eq!(bank.count(1), 4);
        assert_eq!(bank.count(99), 0);
        assert_eq!(bank.counts(), vec![0, 4, 0]);
    }

    #[test]
    fn enable_flag_is_advisory_and_sticky() {
        let bank = ProbeBank::new(vec!["p".into()]);
        assert!(bank.is_enabled());
        bank.hit(0, 2);
        bank.set_enabled(false);
        assert!(!bank.is_enabled());
        // Counts survive a disable (the flag gates recorders, not data).
        assert_eq!(bank.count(0), 2);
        bank.set_enabled(true);
        assert!(bank.is_enabled());
    }

    #[test]
    fn json_shape_escapes_ids() {
        let bank = ProbeBank::new(vec!["dec/\"q".into()]);
        bank.hit(0, 5);
        assert_eq!(
            bank.to_json(),
            "{\"enabled\":true,\"probes\":[{\"id\":\"dec/\\\"q\",\"count\":5}]}"
        );
    }

    #[test]
    fn duplicate_ids_resolve_to_first() {
        let bank = ProbeBank::new(vec!["a".into(), "a".into()]);
        assert_eq!(bank.probe("a"), Some(0));
        assert_eq!(bank.len(), 2);
    }
}
