//! Shadow-audit telemetry: live correctness counters and a mismatch
//! flight recorder.
//!
//! The ingest server samples live sessions and replays them through the
//! reference engines off the fast path (see `cfg-server`). What that
//! audit lane *learns* lands here: an [`AuditBank`] of relaxed counters
//! (sessions sampled/audited/shed, fires confirmed by the exact parser,
//! per-token false positives, cross-engine divergences) and a
//! [`MismatchRing`] holding the evidence for each divergence — the byte
//! window, its offset, and both engines' event streams — dumpable as
//! JSON lines for post-mortem diffing.
//!
//! The same zero-overhead-when-off discipline as the rest of the crate
//! applies: the bank caches its enable flag, and a server that was not
//! asked to audit never constructs either structure, so the serving
//! path stays metrics-dark.

use crate::json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Default [`MismatchRing`] capacity — divergences should be rare, so a
/// small ring keeps every one a debugging session could want.
pub const DEFAULT_MISMATCH_CAPACITY: usize = 64;

/// One tag event as the audit lane stores it. `cfg-obs` sits below the
/// tagger, so this is a plain `(token, start, end)` triple; the server
/// converts the engine's events on the way in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditEvent {
    /// Token index (the grammar's token table order).
    pub token: u32,
    /// Lexeme start offset within the audited frame.
    pub start: u64,
    /// Lexeme end offset (exclusive) within the audited frame.
    pub end: u64,
}

/// Relaxed counters for the shadow-audit lane.
///
/// All increments are `Relaxed` atomics — audit workers on several
/// threads bump them concurrently and scrapes tolerate being a hair
/// stale. The enable flag is cached by the server at session-accept
/// time, so a disabled bank costs the fast path nothing.
#[derive(Debug)]
pub struct AuditBank {
    enabled: AtomicBool,
    sessions_sampled: AtomicU64,
    sessions_audited: AtomicU64,
    sessions_shed: AtomicU64,
    frames_audited: AtomicU64,
    bytes_audited: AtomicU64,
    fires_total: AtomicU64,
    fires_confirmed: AtomicU64,
    divergences: AtomicU64,
    /// One false-positive counter per token, dense in token order.
    false_positives: Vec<AtomicU64>,
}

impl AuditBank {
    /// A bank with one false-positive counter per token, enabled.
    pub fn new(token_count: usize) -> AuditBank {
        AuditBank {
            enabled: AtomicBool::new(true),
            sessions_sampled: AtomicU64::new(0),
            sessions_audited: AtomicU64::new(0),
            sessions_shed: AtomicU64::new(0),
            frames_audited: AtomicU64::new(0),
            bytes_audited: AtomicU64::new(0),
            fires_total: AtomicU64::new(0),
            fires_confirmed: AtomicU64::new(0),
            divergences: AtomicU64::new(0),
            false_positives: (0..token_count).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Turn auditing on or off. The server reads this once per
    /// accepted session, so flipping it is cheap and slightly lazy.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is the audit lane live?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// A session matched the 1-in-N sample and its bytes are being
    /// mirrored.
    pub fn session_sampled(&self) {
        self.sessions_sampled.fetch_add(1, Ordering::Relaxed);
    }

    /// A sampled session's replay completed.
    pub fn session_audited(&self) {
        self.sessions_audited.fetch_add(1, Ordering::Relaxed);
    }

    /// A sampled session was dropped because the audit queue was full
    /// (the fast path never blocks on the audit lane).
    pub fn session_shed(&self) {
        self.sessions_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// One frame of `bytes` payload bytes was replayed.
    pub fn frame_audited(&self, bytes: u64) {
        self.frames_audited.fetch_add(1, Ordering::Relaxed);
        self.bytes_audited.fetch_add(bytes, Ordering::Relaxed);
    }

    /// The production engine fired `total` events on an audited frame,
    /// of which the exact parser confirmed `confirmed`.
    pub fn fires(&self, total: u64, confirmed: u64) {
        self.fires_total.fetch_add(total, Ordering::Relaxed);
        self.fires_confirmed.fetch_add(confirmed, Ordering::Relaxed);
    }

    /// One unconfirmed fire of `token` — the paper's §3.5 false
    /// positive, observed live.
    pub fn false_positive(&self, token: u32) {
        if let Some(c) = self.false_positives.get(token as usize) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The fast and reference engines disagreed on an audited frame.
    pub fn divergence(&self) {
        self.divergences.fetch_add(1, Ordering::Relaxed);
    }

    /// Sessions that matched the sample.
    pub fn sessions_sampled(&self) -> u64 {
        self.sessions_sampled.load(Ordering::Relaxed)
    }

    /// Sampled sessions fully replayed.
    pub fn sessions_audited(&self) -> u64 {
        self.sessions_audited.load(Ordering::Relaxed)
    }

    /// Sampled sessions shed on a full audit queue.
    pub fn sessions_shed(&self) -> u64 {
        self.sessions_shed.load(Ordering::Relaxed)
    }

    /// Frames replayed.
    pub fn frames_audited(&self) -> u64 {
        self.frames_audited.load(Ordering::Relaxed)
    }

    /// Payload bytes replayed.
    pub fn bytes_audited(&self) -> u64 {
        self.bytes_audited.load(Ordering::Relaxed)
    }

    /// Production fires observed on audited frames.
    pub fn fires_total(&self) -> u64 {
        self.fires_total.load(Ordering::Relaxed)
    }

    /// Fires the exact parser confirmed.
    pub fn fires_confirmed(&self) -> u64 {
        self.fires_confirmed.load(Ordering::Relaxed)
    }

    /// Cross-engine divergences observed.
    pub fn divergences(&self) -> u64 {
        self.divergences.load(Ordering::Relaxed)
    }

    /// False positives recorded for `token` (0 for out-of-range ids).
    pub fn false_positives(&self, token: u32) -> u64 {
        self.false_positives.get(token as usize).map(|c| c.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Tokens the bank tracks.
    pub fn token_count(&self) -> usize {
        self.false_positives.len()
    }

    /// Live precision: confirmed fires / total fires, as a percentage.
    /// `None` until an audited frame has fired at all.
    pub fn precision_pct(&self) -> Option<f64> {
        let total = self.fires_total();
        (total > 0).then(|| self.fires_confirmed() as f64 / total as f64 * 100.0)
    }

    /// Render the bank as the `/audit.json` object. `names` supplies
    /// token labels (token index used when a name is missing); only
    /// tokens with nonzero false positives get a row.
    pub fn to_json(&self, names: &[String]) -> String {
        let mut out = String::from("{\"enabled\":");
        out.push_str(if self.is_enabled() { "true" } else { "false" });
        for (key, v) in [
            ("sessions_sampled", self.sessions_sampled()),
            ("sessions_audited", self.sessions_audited()),
            ("sessions_shed", self.sessions_shed()),
            ("frames_audited", self.frames_audited()),
            ("bytes_audited", self.bytes_audited()),
            ("fires_total", self.fires_total()),
            ("fires_confirmed", self.fires_confirmed()),
            ("divergences", self.divergences()),
        ] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            out.push_str(&v.to_string());
        }
        out.push_str(",\"precision_pct\":");
        // `push_f64` renders the no-data case (NaN) as `null`.
        json::push_f64(&mut out, self.precision_pct().unwrap_or(f64::NAN));
        out.push_str(",\"false_positives\":[");
        let mut first = true;
        for (i, c) in self.false_positives.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"token\":");
            match names.get(i) {
                Some(name) => json::push_str(&mut out, name),
                None => json::push_str(&mut out, &format!("tok{i}")),
            }
            out.push_str(",\"count\":");
            out.push_str(&n.to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Evidence for one cross-engine divergence: where it happened and
/// what each engine said.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Session id of the audited stream.
    pub session: u64,
    /// Frame index within the session (0-based, Data frames only).
    pub frame: u64,
    /// Byte offset of `window` within the frame payload.
    pub window_start: u64,
    /// The audited bytes (possibly truncated to a window).
    pub window: Vec<u8>,
    /// The production (bit) engine's events for the frame.
    pub fast: Vec<AuditEvent>,
    /// The reference (scalar) engine's events for the frame.
    pub reference: Vec<AuditEvent>,
}

/// A fixed-size ring of recent [`Mismatch`]es, oldest evicted first —
/// the flight recorder of the audit lane. Dumpable as JSON lines via
/// [`MismatchRing::dump_jsonl`] (the `/mismatches.jsonl` endpoint).
#[derive(Debug)]
pub struct MismatchRing {
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<(u64, Mismatch)>>,
}

impl Default for MismatchRing {
    fn default() -> Self {
        MismatchRing::new(DEFAULT_MISMATCH_CAPACITY)
    }
}

impl MismatchRing {
    /// A ring holding up to `capacity` mismatches (0 disables it).
    pub fn new(capacity: usize) -> MismatchRing {
        MismatchRing { capacity, seq: AtomicU64::new(0), ring: Mutex::new(VecDeque::new()) }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Whether nothing has been recorded (or capacity is 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total mismatches ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Record one mismatch; returns the sequence number it was stamped
    /// with.
    pub fn record(&self, m: Mismatch) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if self.capacity == 0 {
            return seq;
        }
        let mut ring = self.ring.lock().unwrap();
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back((seq, m));
        seq
    }

    /// Copy out the ring, oldest first, each entry with its sequence
    /// number.
    pub fn entries(&self) -> Vec<(u64, Mismatch)> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Dump the ring as JSON lines, oldest first — one object per
    /// mismatch with the window (UTF-8, lossy) and both event streams.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for (seq, m) in self.entries() {
            out.push_str("{\"seq\":");
            out.push_str(&seq.to_string());
            out.push_str(",\"session\":");
            out.push_str(&m.session.to_string());
            out.push_str(",\"frame\":");
            out.push_str(&m.frame.to_string());
            out.push_str(",\"window_start\":");
            out.push_str(&m.window_start.to_string());
            out.push_str(",\"window\":");
            json::push_str(&mut out, &String::from_utf8_lossy(&m.window));
            for (key, events) in [("fast", &m.fast), ("reference", &m.reference)] {
                out.push_str(",\"");
                out.push_str(key);
                out.push_str("\":[");
                for (i, e) in events.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"token\":{},\"start\":{},\"end\":{}}}",
                        e.token, e.start, e.end
                    ));
                }
                out.push(']');
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn audit_bank_counts_and_renders_json() {
        let bank = AuditBank::new(3);
        assert!(bank.is_enabled());
        assert_eq!(bank.precision_pct(), None);
        bank.session_sampled();
        bank.session_sampled();
        bank.session_audited();
        bank.session_shed();
        bank.frame_audited(100);
        bank.frame_audited(28);
        bank.fires(10, 9);
        bank.false_positive(1);
        bank.false_positive(1);
        bank.false_positive(99); // out of range: ignored, not a panic
        bank.divergence();
        assert_eq!(bank.sessions_sampled(), 2);
        assert_eq!(bank.sessions_audited(), 1);
        assert_eq!(bank.sessions_shed(), 1);
        assert_eq!(bank.frames_audited(), 2);
        assert_eq!(bank.bytes_audited(), 128);
        assert_eq!(bank.fires_total(), 10);
        assert_eq!(bank.fires_confirmed(), 9);
        assert_eq!(bank.false_positives(1), 2);
        assert_eq!(bank.false_positives(0), 0);
        assert_eq!(bank.false_positives(99), 0);
        assert_eq!(bank.divergences(), 1);
        assert!((bank.precision_pct().unwrap() - 90.0).abs() < 1e-9);

        let names = vec!["A".to_string(), "B".to_string(), "C".to_string()];
        let body = bank.to_json(&names);
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("enabled").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("sessions_sampled").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("divergences").and_then(Json::as_u64), Some(1));
        assert!((v.get("precision_pct").and_then(Json::as_f64).unwrap() - 90.0).abs() < 1e-9);
        let fps = v.get("false_positives").and_then(Json::as_array).unwrap();
        assert_eq!(fps.len(), 1, "zero-count tokens are skipped: {body}");
        assert_eq!(fps[0].get("token").and_then(Json::as_str), Some("B"));
        assert_eq!(fps[0].get("count").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn empty_bank_precision_is_null_json() {
        let bank = AuditBank::new(1);
        bank.set_enabled(false);
        let body = bank.to_json(&[]);
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("enabled").and_then(Json::as_bool), Some(false));
        assert!(v.get("precision_pct").unwrap().as_f64().is_none(), "{body}");
        assert_eq!(v.get("false_positives").and_then(Json::as_array).map(|a| a.len()), Some(0));
    }

    fn mismatch(session: u64) -> Mismatch {
        Mismatch {
            session,
            frame: 3,
            window_start: 0,
            window: b"if true \"quoted\"".to_vec(),
            fast: vec![AuditEvent { token: 0, start: 0, end: 2 }],
            reference: vec![
                AuditEvent { token: 0, start: 0, end: 2 },
                AuditEvent { token: 1, start: 3, end: 7 },
            ],
        }
    }

    #[test]
    fn mismatch_ring_evicts_oldest_and_dumps_jsonl() {
        let ring = MismatchRing::new(2);
        assert!(ring.is_empty());
        for s in 0..3 {
            ring.record(mismatch(s));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.recorded(), 3);
        let entries = ring.entries();
        assert_eq!(entries[0].0, 1, "oldest surviving seq");
        assert_eq!(entries[0].1.session, 1);
        assert_eq!(entries[1].1.session, 2);

        let dump = ring.dump_jsonl();
        assert_eq!(dump.lines().count(), 2);
        let first = Json::parse(dump.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("seq").and_then(Json::as_u64), Some(1));
        assert_eq!(first.get("session").and_then(Json::as_u64), Some(1));
        assert_eq!(first.get("frame").and_then(Json::as_u64), Some(3));
        // The quoted window survives JSON escaping.
        assert_eq!(first.get("window").and_then(Json::as_str), Some("if true \"quoted\""));
        assert_eq!(first.get("fast").and_then(Json::as_array).map(|a| a.len()), Some(1));
        let reference = first.get("reference").and_then(Json::as_array).unwrap();
        assert_eq!(reference.len(), 2);
        assert_eq!(reference[1].get("start").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn zero_capacity_ring_counts_but_keeps_nothing() {
        let ring = MismatchRing::new(0);
        ring.record(mismatch(0));
        assert_eq!(ring.recorded(), 1);
        assert!(ring.is_empty());
        assert_eq!(ring.dump_jsonl(), "");
    }
}
