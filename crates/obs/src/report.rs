//! Structured compile-pipeline report: per-stage timings plus summary
//! counts, renderable as text or JSON.

use crate::json;
use std::fmt;

/// One pipeline stage's wall-clock cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name, e.g. `"grammar_parse"`, `"token_duplication"`.
    pub stage: String,
    /// Wall-clock nanoseconds spent in the stage.
    pub nanos: u64,
}

/// A report over one run of the compile pipeline (grammar → hardware).
///
/// Built by `TokenTagger::compile`; stages appear in execution order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompileReport {
    /// Per-stage timings in execution order.
    pub stages: Vec<StageTiming>,
    /// Summary counts, e.g. `("tokens", 13)`, `("gates", 412)`.
    pub counts: Vec<(String, u64)>,
}

impl CompileReport {
    /// Append a stage timing.
    pub fn stage(&mut self, stage: impl Into<String>, nanos: u64) {
        self.stages.push(StageTiming { stage: stage.into(), nanos });
    }

    /// Append a summary count.
    pub fn count(&mut self, name: impl Into<String>, value: u64) {
        self.counts.push((name.into(), value));
    }

    /// Total nanoseconds across all stages.
    pub fn total_nanos(&self) -> u64 {
        self.stages.iter().map(|s| s.nanos).sum()
    }

    /// Look up a count by name.
    pub fn get_count(&self, name: &str) -> Option<u64> {
        self.counts.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Encode as a JSON object:
    /// `{"stages":[{"stage":...,"nanos":...}],"total_nanos":...,"counts":{...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"stage\":");
            json::push_str(&mut out, &s.stage);
            out.push_str(&format!(",\"nanos\":{}}}", s.nanos));
        }
        out.push_str(&format!("],\"total_nanos\":{},\"counts\":", self.total_nanos()));
        out.push_str(&json::object_u64(
            &self.counts.iter().map(|(k, v)| (k.as_str(), *v)).collect::<Vec<_>>(),
        ));
        out.push('}');
        out
    }
}

impl fmt::Display for CompileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "compile pipeline ({} stages):", self.stages.len())?;
        let total = self.total_nanos().max(1);
        for s in &self.stages {
            writeln!(
                f,
                "  {:<24} {:>10.3} ms  {:>5.1}%",
                s.stage,
                s.nanos as f64 / 1e6,
                s.nanos as f64 * 100.0 / total as f64
            )?;
        }
        writeln!(f, "  {:<24} {:>10.3} ms", "total", self.total_nanos() as f64 / 1e6)?;
        for (name, value) in &self.counts {
            writeln!(f, "  {name:<24} {value:>10}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_in_order() {
        let mut r = CompileReport::default();
        r.stage("grammar_parse", 1000);
        r.stage("hwgen", 2000);
        r.count("tokens", 13);
        assert_eq!(r.total_nanos(), 3000);
        assert_eq!(r.get_count("tokens"), Some(13));
        assert_eq!(r.get_count("missing"), None);
        assert_eq!(r.stages[0].stage, "grammar_parse");
    }

    #[test]
    fn report_json_shape() {
        let mut r = CompileReport::default();
        r.stage("a", 10);
        r.stage("b", 20);
        r.count("gates", 5);
        let json = r.to_json();
        assert_eq!(
            json,
            "{\"stages\":[{\"stage\":\"a\",\"nanos\":10},{\"stage\":\"b\",\"nanos\":20}],\
             \"total_nanos\":30,\"counts\":{\"gates\":5}}"
        );
    }

    #[test]
    fn report_display_has_percentages() {
        let mut r = CompileReport::default();
        r.stage("x", 750);
        r.stage("y", 250);
        let text = r.to_string();
        assert!(text.contains("75.0%"));
        assert!(text.contains("25.0%"));
        assert!(text.contains("total"));
    }
}
