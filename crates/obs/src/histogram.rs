//! Power-of-two-bucket histogram for latency/size distributions.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket `i` counts values in `[2^(i-1), 2^i)`,
/// with bucket 0 counting zeros and ones, and the last bucket open
/// above. 64 buckets cover the full `u64` range.
const BUCKETS: usize = 64;

/// A concurrent histogram with power-of-two buckets.
///
/// `record` is an atomic add on one bucket plus two atomic adds for the
/// running count/sum — cheap enough for per-message (not per-byte) use.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_of(value: u64) -> usize {
    // 0 and 1 land in bucket 0; otherwise the position of the highest
    // set bit. `u64::MAX` lands in bucket 63.
    (64 - value.leading_zeros() as usize).saturating_sub(1).min(BUCKETS - 1)
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Take a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; bucket `i` covers `[2^(i-1), 2^i)`.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive) of the bucket containing quantile `q`
    /// (`0.0 ..= 1.0`) — a coarse percentile good to a factor of two.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
            }
        }
        u64::MAX
    }

    /// Encode as a compact JSON object (non-empty buckets only).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3},\"buckets\":{{",
            self.count,
            self.sum,
            self.max,
            self.mean()
        ));
        let mut first = true;
        for (i, b) in self.buckets.iter().enumerate() {
            if *b == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let hi: u128 = 1u128 << (i + 1);
            out.push_str(&format!("\"<{hi}\":{b}"));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_power_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 221.2).abs() < 1e-9);
        assert_eq!(s.quantile_bound(0.0), 2); // first value is in bucket 0
        assert!(s.quantile_bound(1.0) >= 1000);
        let json = s.to_json();
        assert!(json.contains("\"count\":5"));
        assert!(json.contains("\"<2\":1"));
    }

    #[test]
    fn empty_snapshot() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile_bound(0.5), 0);
        assert!(s.to_json().contains("\"buckets\":{}"));
    }
}
