//! Power-of-two-bucket histogram for latency/size distributions.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket `i` counts values in `[2^(i-1), 2^i)`,
/// with bucket 0 counting zeros and ones, and the last bucket open
/// above. 64 buckets cover the full `u64` range.
const BUCKETS: usize = 64;

/// A concurrent histogram with power-of-two buckets.
///
/// `record` is an atomic add on one bucket plus two atomic adds for the
/// running count/sum — cheap enough for per-message (not per-byte) use.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_of(value: u64) -> usize {
    // 0 and 1 land in bucket 0; otherwise the position of the highest
    // set bit. `u64::MAX` lands in bucket 63.
    (64 - value.leading_zeros() as usize).saturating_sub(1).min(BUCKETS - 1)
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Take a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Fold another histogram's observations into this one.
    ///
    /// Bucket-wise atomic adds; both histograms may keep recording while
    /// the merge runs (the result is then merely consistent-enough, like
    /// [`Histogram::snapshot`]).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = theirs.load(Ordering::Relaxed);
            if v > 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Estimated value at quantile `q` (`0.0 ..= 1.0`); see
    /// [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

/// Plain-data view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; bucket `i` covers `[2^(i-1), 2^i)`.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another snapshot's observations into this one.
    ///
    /// Bucket-wise addition; `count`/`sum` accumulate and `max` takes
    /// the larger. The snapshots may have different bucket vector
    /// lengths (e.g. one came from an older encoding) — the result is
    /// sized to the longer of the two.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Estimated value at quantile `q` (`0.0 ..= 1.0`).
    ///
    /// Walks the power-of-two buckets to the one containing the rank
    /// `q * count`, then interpolates linearly inside it (the bucket's
    /// upper edge is clamped to the observed `max`, so a single-bucket
    /// histogram cannot report a value above anything it ever saw).
    /// Returns `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0.0f64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let width = b as f64;
            if seen + width >= rank {
                let lo = if i == 0 { 0.0 } else { (1u128 << i) as f64 };
                let hi = if i >= 63 { self.max as f64 } else { (1u128 << (i + 1)) as f64 };
                let hi = hi.min(self.max as f64).max(lo);
                let frac = ((rank - seen) / width).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
            seen += width;
        }
        self.max as f64
    }

    /// Upper bound (exclusive) of the bucket containing quantile `q`
    /// (`0.0 ..= 1.0`) — a coarse percentile good to a factor of two.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
            }
        }
        u64::MAX
    }

    /// Encode as a compact JSON object (non-empty buckets only).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3},\"buckets\":{{",
            self.count,
            self.sum,
            self.max,
            self.mean()
        ));
        let mut first = true;
        for (i, b) in self.buckets.iter().enumerate() {
            if *b == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let hi: u128 = 1u128 << (i + 1);
            out.push_str(&format!("\"<{hi}\":{b}"));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_power_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 221.2).abs() < 1e-9);
        assert_eq!(s.quantile_bound(0.0), 2); // first value is in bucket 0
        assert!(s.quantile_bound(1.0) >= 1000);
        let json = s.to_json();
        assert!(json.contains("\"count\":5"));
        assert!(json.contains("\"<2\":1"));
    }

    #[test]
    fn empty_snapshot() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile_bound(0.5), 0);
        assert!(s.to_json().contains("\"buckets\":{}"));
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    #[test]
    fn quantile_single_bucket_interpolates_within_it() {
        // All observations land in bucket 2 ([4, 8)); the estimate must
        // stay inside the bucket and never exceed the observed max.
        let h = Histogram::default();
        for _ in 0..10 {
            h.record(5);
        }
        let s = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = s.quantile(q);
            assert!((4.0..=5.0).contains(&v), "q={q} -> {v}");
        }
        assert_eq!(s.quantile(1.0), 5.0);
        assert_eq!(s.quantile(0.0), 4.0);
    }

    #[test]
    fn quantile_saturated_top_bucket() {
        // u64::MAX saturates into bucket 63, whose open upper edge is
        // clamped to the observed max instead of overflowing 2^64.
        let h = Histogram::default();
        for _ in 0..4 {
            h.record(u64::MAX);
        }
        h.record(1);
        let s = h.snapshot();
        let p99 = s.quantile(0.99);
        assert!(p99 >= (1u128 << 63) as f64 && p99 <= u64::MAX as f64, "p99={p99}");
        assert_eq!(s.quantile(1.0), u64::MAX as f64);
        assert!(s.quantile(0.05) <= 1.0);
    }

    #[test]
    fn quantile_spread_is_monotone() {
        let h = Histogram::default();
        for v in [1u64, 2, 4, 8, 100, 1000, 10_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let mut prev = -1.0f64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = s.quantile(q);
            assert!(v >= prev, "quantiles must be monotone: q={q} -> {v} < {prev}");
            prev = v;
        }
        assert_eq!(s.quantile(1.0), 10_000.0);
    }

    #[test]
    fn merge_accumulates_both_histograms() {
        let a = Histogram::default();
        let b = Histogram::default();
        for v in [1u64, 5, 9] {
            a.record(v);
        }
        for v in [100u64, 200] {
            b.record(v);
        }
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 315);
        assert_eq!(s.max, 200);
        // Merging an empty histogram changes nothing.
        a.merge(&Histogram::default());
        assert_eq!(a.snapshot(), s);
    }

    #[test]
    fn snapshot_merge_handles_empty_and_size_mismatch() {
        let a = Histogram::default();
        a.record(7);
        let mut snap = a.snapshot();
        // Merging an all-zero snapshot with a shorter bucket vector.
        let empty = HistogramSnapshot { buckets: vec![0; 4], count: 0, sum: 0, max: 0 };
        snap.merge(&empty);
        assert_eq!(snap.count, 1);
        // Merging into an empty snapshot resizes to the longer vector.
        let mut acc = HistogramSnapshot { buckets: Vec::new(), count: 0, sum: 0, max: 0 };
        acc.merge(&snap);
        assert_eq!(acc, snap);
        assert_eq!(acc.quantile(1.0), 7.0);
    }
}
