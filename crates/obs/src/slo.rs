//! The SLO pipeline: fine-grained latency histograms per serving stage
//! plus error-budget accounting against a configurable objective.
//!
//! The existing [`crate::Histogram`] uses one bucket per power of two —
//! perfect for throughput counters, too coarse for latency quantiles
//! (a p50 can be off by ~50% inside one octave). [`FineHistogram`]
//! subdivides each octave into 16 log-linear sub-buckets, bounding the
//! relative quantile error at ~6% while staying a fixed array of
//! atomics (no allocation on the record path).
//!
//! [`SloTracker`] aggregates every traced frame: one fine histogram per
//! [`Stage`] plus end-to-end, and a latency objective (e.g. "99% of
//! frames under 50 ms") with breach counting. Its snapshot reports
//! p50/p90/p99/p99.9 per stage and how much of the error budget is
//! burnt — `cfgtag slo` turns two consecutive snapshots into a burn
//! rate.

use crate::json;
use crate::span::{Span, Stage};
use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of sub-buckets per octave.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave (16).
const SUB: usize = 1 << SUB_BITS;
/// Total buckets: values below 16 get exact buckets, every octave from
/// 2^4 up to 2^63 gets 16 sub-buckets.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Bucket index for a value (log-linear: octave, then linear within).
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (msb as u32 - SUB_BITS)) as usize) & (SUB - 1);
    SUB + (msb - SUB_BITS as usize) * SUB + sub
}

/// `[lo, hi)` bounds of bucket `i` (hi saturates at `u64::MAX`).
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB {
        return (i as u64, i as u64 + 1);
    }
    let octave = (i - SUB) / SUB;
    let sub = ((i - SUB) % SUB) as u64;
    let msb = octave as u32 + SUB_BITS;
    let step = 1u64 << (msb - SUB_BITS);
    let lo = (1u64 << msb) + sub * step;
    (lo, lo.saturating_add(step))
}

/// A lock-free log-linear histogram with ~6% quantile resolution.
#[derive(Debug)]
pub struct FineHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for FineHistogram {
    fn default() -> FineHistogram {
        FineHistogram::new()
    }
}

impl FineHistogram {
    /// An empty histogram.
    pub fn new() -> FineHistogram {
        FineHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy for quantile queries.
    pub fn snapshot(&self) -> FineSnapshot {
        FineSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`FineHistogram`].
#[derive(Debug, Clone)]
pub struct FineSnapshot {
    buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl FineSnapshot {
    /// The `q`-quantile (`0.0..=1.0`), linearly interpolated within the
    /// winning bucket and clamped to the observed max. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            seen += n;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                let into = (rank - (seen - n)) as f64 / n as f64;
                let est = lo as f64 + (hi.saturating_sub(lo)) as f64 * into;
                return (est as u64).min(self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// p50/p90/p99/p99.9 plus count, mean and max for one latency series.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSummary {
    /// Observations in the series.
    pub count: u64,
    /// Mean, in the series' unit (nanoseconds on the serving path).
    pub mean: f64,
    /// Largest observation.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl QuantileSummary {
    fn from_snapshot(s: &FineSnapshot) -> QuantileSummary {
        QuantileSummary {
            count: s.count,
            mean: s.mean(),
            max: s.max,
            p50: s.quantile(0.50),
            p90: s.quantile(0.90),
            p99: s.quantile(0.99),
            p999: s.quantile(0.999),
        }
    }

    fn push_json(&self, out: &mut String) {
        out.push_str("{\"count\":");
        out.push_str(&self.count.to_string());
        out.push_str(",\"mean_ns\":");
        json::push_f64(out, self.mean);
        out.push_str(",\"max_ns\":");
        out.push_str(&self.max.to_string());
        out.push_str(",\"p50_ns\":");
        out.push_str(&self.p50.to_string());
        out.push_str(",\"p90_ns\":");
        out.push_str(&self.p90.to_string());
        out.push_str(",\"p99_ns\":");
        out.push_str(&self.p99.to_string());
        out.push_str(",\"p999_ns\":");
        out.push_str(&self.p999.to_string());
        out.push('}');
    }
}

/// Aggregates traced frames against a latency objective.
///
/// `observe` is called once per finished span (by the shard worker,
/// after the ack is written): every stamped stage's duration lands in
/// that stage's histogram, the end-to-end latency in the `e2e`
/// histogram, and the objective comparison bumps the breach counter.
#[derive(Debug)]
pub struct SloTracker {
    objective_ns: u64,
    target: f64,
    stages: Vec<FineHistogram>,
    e2e: FineHistogram,
    total: AtomicU64,
    breaches: AtomicU64,
}

impl SloTracker {
    /// A tracker with objective "`target` of frames finish within
    /// `objective_ns`". `target` is a fraction, e.g. `0.99`.
    pub fn new(objective_ns: u64, target: f64) -> SloTracker {
        SloTracker {
            objective_ns: objective_ns.max(1),
            target: target.clamp(0.0, 0.9999),
            stages: (0..Stage::COUNT).map(|_| FineHistogram::new()).collect(),
            e2e: FineHistogram::new(),
            total: AtomicU64::new(0),
            breaches: AtomicU64::new(0),
        }
    }

    /// The configured objective, in nanoseconds.
    pub fn objective_ns(&self) -> u64 {
        self.objective_ns
    }

    /// Fold one finished span into the histograms.
    pub fn observe(&self, span: &Span) {
        for stage in Stage::ALL {
            if let Some(ns) = span.stage_ns(stage) {
                self.stages[stage as usize].record(ns);
            }
        }
        let total = span.total_ns();
        self.e2e.record(total);
        self.total.fetch_add(1, Ordering::Relaxed);
        if total > self.objective_ns {
            self.breaches.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time summary of everything observed so far.
    pub fn snapshot(&self) -> SloSnapshot {
        SloSnapshot {
            objective_ns: self.objective_ns,
            target: self.target,
            total: self.total.load(Ordering::Relaxed),
            breaches: self.breaches.load(Ordering::Relaxed),
            e2e: QuantileSummary::from_snapshot(&self.e2e.snapshot()),
            stages: Stage::ALL
                .iter()
                .map(|&s| {
                    (s.name(), QuantileSummary::from_snapshot(&self.stages[s as usize].snapshot()))
                })
                .collect(),
        }
    }
}

/// What [`SloTracker::snapshot`] reports.
#[derive(Debug, Clone)]
pub struct SloSnapshot {
    /// The latency objective, in nanoseconds.
    pub objective_ns: u64,
    /// The fraction of frames that must meet the objective.
    pub target: f64,
    /// Frames observed.
    pub total: u64,
    /// Frames that exceeded the objective.
    pub breaches: u64,
    /// End-to-end latency summary.
    pub e2e: QuantileSummary,
    /// Per-stage summaries, in [`Stage::ALL`] order.
    pub stages: Vec<(&'static str, QuantileSummary)>,
}

impl SloSnapshot {
    /// Observed breach fraction (0 when nothing observed).
    pub fn error_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.breaches as f64 / self.total as f64
        }
    }

    /// Fraction of the error budget consumed: the observed error rate
    /// over the allowed one (`1 - target`). 1.0 means the budget is
    /// exactly spent; above 1.0 the SLO is being violated.
    pub fn budget_consumed(&self) -> f64 {
        self.error_rate() / (1.0 - self.target)
    }

    /// The `/slo.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"objective_ms\":");
        json::push_f64(&mut out, self.objective_ns as f64 / 1e6);
        out.push_str(",\"target\":");
        json::push_f64(&mut out, self.target);
        out.push_str(",\"total\":");
        out.push_str(&self.total.to_string());
        out.push_str(",\"breaches\":");
        out.push_str(&self.breaches.to_string());
        out.push_str(",\"error_rate\":");
        json::push_f64(&mut out, self.error_rate());
        out.push_str(",\"budget_consumed\":");
        json::push_f64(&mut out, self.budget_consumed());
        out.push_str(",\"e2e\":");
        self.e2e.push_json(&mut out);
        out.push_str(",\"stages\":{");
        for (i, (name, summary)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, name);
            out.push(':');
            summary.push_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn bucket_index_and_bounds_agree() {
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 65_535, 1 << 30, u64::MAX] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && (v < hi || hi == u64::MAX), "v={v} i={i} lo={lo} hi={hi}");
        }
        // Bounds tile the axis without gaps.
        let mut expect_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect_lo, "bucket {i} starts where {} ended", i.saturating_sub(1));
            assert!(hi > lo);
            if hi == u64::MAX {
                break;
            }
            expect_lo = hi;
        }
    }

    #[test]
    fn quantiles_are_tight() {
        let h = FineHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        for (q, exact) in [(0.50, 5_000.0), (0.90, 9_000.0), (0.99, 9_900.0)] {
            let got = s.quantile(q) as f64;
            let err = (got - exact).abs() / exact;
            assert!(err < 0.07, "q{q}: got {got}, want ~{exact} (err {err:.3})");
        }
        assert_eq!(s.quantile(1.0), 10_000);
        assert!((s.mean() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = FineHistogram::new().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn tracker_attributes_stages_and_counts_breaches() {
        let tracker = SloTracker::new(1_000, 0.99);
        for total in [500u64, 800, 2_000] {
            let mut span = Span::detached();
            span.stamp_at(Stage::QueueWait, total / 2);
            span.stamp_at(Stage::Engine, total * 3 / 4);
            span.stamp_at(Stage::AckWrite, total);
            tracker.observe(&span);
        }
        let snap = tracker.snapshot();
        assert_eq!(snap.total, 3);
        assert_eq!(snap.breaches, 1, "only the 2000ns span breaches the 1000ns objective");
        assert!((snap.error_rate() - 1.0 / 3.0).abs() < 1e-9);
        // Budget: (1/3) / (1 - 0.99) ≈ 33×.
        assert!(snap.budget_consumed() > 30.0);
        assert_eq!(snap.e2e.count, 3);
        let queue = &snap.stages[Stage::QueueWait as usize];
        assert_eq!(queue.0, "queue_wait");
        assert_eq!(queue.1.count, 3);
        let frame_read = &snap.stages[Stage::FrameRead as usize];
        assert_eq!(frame_read.1.count, 0, "unstamped stages record nothing");
    }

    #[test]
    fn slo_json_round_trips() {
        let tracker = SloTracker::new(50_000_000, 0.99);
        let mut span = Span::detached();
        span.stamp_at(Stage::Engine, 1_000);
        span.stamp_at(Stage::AckWrite, 1_500);
        tracker.observe(&span);
        let v = Json::parse(&tracker.snapshot().to_json()).unwrap();
        assert_eq!(v.get("objective_ms").unwrap().as_f64(), Some(50.0));
        assert_eq!(v.get("total").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("breaches").unwrap().as_u64(), Some(0));
        let e2e = v.get("e2e").unwrap();
        assert_eq!(e2e.get("count").unwrap().as_u64(), Some(1));
        assert!(e2e.get("p50_ns").unwrap().as_u64().unwrap() >= 1_400);
        let stages = v.get("stages").unwrap();
        assert_eq!(stages.get("engine").unwrap().get("count").unwrap().as_u64(), Some(1));
        assert_eq!(stages.get("frame_read").unwrap().get("count").unwrap().as_u64(), Some(0));
    }
}
