//! Saturation time series: per-shard load accounting plus a fixed ring
//! of periodic snapshots.
//!
//! The span pipeline says how long one frame waited in a shard queue;
//! this module says *why* — what the shard's workers were doing with
//! their time while the queue filled. A [`ShardLoadBank`] holds one
//! [`ShardLoad`] per shard: monotonic arrival/dequeue/completion
//! counters and cumulative busy nanoseconds, all relaxed atomics the
//! submit path and worker loop bump only when the bank is enabled (the
//! cached-flag idiom — a disabled bank costs one atomic load per
//! message and no `Instant::now()` calls).
//!
//! A [`TimeSeries`] snapshots the bank on a configurable interval into
//! a bounded ring of [`TickSnapshot`]s — the raw dump behind
//! `/timeseries.json` — and derives per-shard [`ShardGauge`]s over the
//! ring's window: utilization %, arrival/service rates, and a
//! Little's-law predicted queue wait (`W_q = L̄_q / λ`) that
//! `cfgtag shards` puts next to the *measured* `queue_wait` p50 from
//! `/slo.json`. When the two agree, queueing theory explains the
//! latency; when they diverge, something other than steady-state
//! saturation (bursts, a stalled worker) is going on.

use crate::json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Monotonic load counters for one shard. All relaxed atomics: the
/// writers are one submit path and one worker thread, the reader is the
/// sampler, and every field is a cumulative count — exactness at a
/// sampling instant is not required, monotonicity is.
#[derive(Debug, Default)]
pub struct ShardLoad {
    arrivals: AtomicU64,
    dequeues: AtomicU64,
    completions: AtomicU64,
    busy_ns: AtomicU64,
}

impl ShardLoad {
    fn sample(&self) -> ShardSample {
        let arrivals = self.arrivals.load(Ordering::Relaxed);
        let dequeues = self.dequeues.load(Ordering::Relaxed);
        ShardSample {
            queue_depth: arrivals.saturating_sub(dequeues),
            arrivals,
            completions: self.completions.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
        }
    }
}

/// One shard's counters at a sampling instant. Queue depth is derived
/// (`arrivals - dequeues`) so the counters themselves stay monotonic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardSample {
    /// Messages accepted but not yet picked up by the worker.
    pub queue_depth: u64,
    /// Messages accepted onto the shard's queue, ever.
    pub arrivals: u64,
    /// Messages fully processed (a caught panic dequeues but does not
    /// complete).
    pub completions: u64,
    /// Cumulative worker time spent inside the handler.
    pub busy_ns: u64,
}

impl ShardSample {
    /// Fuse two shards' samples into a pool-wide view: counters and
    /// depths sum.
    pub fn merge(&self, other: &ShardSample) -> ShardSample {
        ShardSample {
            queue_depth: self.queue_depth + other.queue_depth,
            arrivals: self.arrivals + other.arrivals,
            completions: self.completions + other.completions,
            busy_ns: self.busy_ns + other.busy_ns,
        }
    }
}

/// The per-shard load counters behind a [`crate::StatsSink`]-style
/// enable flag, plus the epoch every snapshot timestamp is relative to.
#[derive(Debug)]
pub struct ShardLoadBank {
    enabled: AtomicBool,
    shards: Vec<ShardLoad>,
    epoch: Instant,
}

impl ShardLoadBank {
    /// A bank for `shards` shards (clamped to at least one), enabled.
    pub fn new(shards: usize) -> ShardLoadBank {
        ShardLoadBank {
            enabled: AtomicBool::new(true),
            shards: (0..shards.max(1)).map(|_| ShardLoad::default()).collect(),
            epoch: Instant::now(),
        }
    }

    /// Number of shards tracked.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether recording is on. Writers check this once per message and
    /// skip all counter work (and clock reads) when it is off.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording. Turning a live bank off can strand a queue-depth
    /// delta (an arrival whose dequeue lands while disabled); that skew
    /// is bounded by the in-flight count and only the overhead bench
    /// toggles a bank mid-run.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// A message was accepted onto shard `i`'s queue.
    pub fn arrive(&self, i: usize) {
        if let Some(s) = self.shards.get(i) {
            s.arrivals.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Shard `i`'s worker picked a message up.
    pub fn dequeue(&self, i: usize) {
        if let Some(s) = self.shards.get(i) {
            s.dequeues.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Shard `i`'s worker spent `busy_ns` in the handler; `completed`
    /// is false when the handler panicked (busy time still counts —
    /// the worker was not idle — but the message was not served).
    pub fn record_work(&self, i: usize, busy_ns: u64, completed: bool) {
        if let Some(s) = self.shards.get(i) {
            s.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
            if completed {
                s.completions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Nanoseconds since the bank was created — the timestamp base for
    /// every [`TickSnapshot`].
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Point-in-time samples of every shard, in shard order.
    pub fn sample(&self) -> Vec<ShardSample> {
        self.shards.iter().map(ShardLoad::sample).collect()
    }
}

/// One periodic snapshot: when it was taken (nanoseconds since the
/// bank's epoch) and every shard's counters at that instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickSnapshot {
    /// Nanoseconds since the bank epoch.
    pub t_ns: u64,
    /// Per-shard samples, in shard order.
    pub shards: Vec<ShardSample>,
}

impl TickSnapshot {
    /// All shards fused into one pool-wide sample.
    pub fn merged(&self) -> ShardSample {
        self.shards.iter().fold(ShardSample::default(), |acc, s| acc.merge(s))
    }
}

/// Derived rates for one shard over a snapshot window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardGauge {
    /// Shard index.
    pub shard: usize,
    /// Queue depth at the window's end.
    pub queue_depth: u64,
    /// Worker busy time as a percentage of the window's wall time,
    /// clamped to `[0, 100]`.
    pub utilization_pct: f64,
    /// Messages accepted per second over the window.
    pub arrivals_per_sec: f64,
    /// Messages completed per second over the window.
    pub completions_per_sec: f64,
    /// Little's-law predicted queue wait: mean queue depth over the
    /// window divided by the arrival rate (`W_q = L̄_q / λ`), in
    /// nanoseconds. Zero when nothing arrived.
    pub predicted_wait_ns: f64,
}

/// Derive per-shard gauges from a snapshot window (oldest tick first).
/// Needs at least two ticks; fewer yield an empty vector.
pub fn derive_gauges(window: &[TickSnapshot]) -> Vec<ShardGauge> {
    let (Some(first), Some(last)) = (window.first(), window.last()) else {
        return Vec::new();
    };
    let dt_ns = last.t_ns.saturating_sub(first.t_ns);
    if dt_ns == 0 {
        return Vec::new();
    }
    let dt_secs = dt_ns as f64 / 1e9;
    let shards = first.shards.len().min(last.shards.len());
    (0..shards)
        .map(|i| {
            let (a, b) = (&first.shards[i], &last.shards[i]);
            let busy = b.busy_ns.saturating_sub(a.busy_ns);
            let arrivals = b.arrivals.saturating_sub(a.arrivals);
            let completions = b.completions.saturating_sub(a.completions);
            let mean_depth =
                window.iter().filter_map(|t| t.shards.get(i)).map(|s| s.queue_depth).sum::<u64>()
                    as f64
                    / window.len() as f64;
            let arrival_rate = arrivals as f64 / dt_secs;
            ShardGauge {
                shard: i,
                queue_depth: b.queue_depth,
                utilization_pct: (busy as f64 / dt_ns as f64 * 100.0).clamp(0.0, 100.0),
                arrivals_per_sec: arrival_rate,
                completions_per_sec: completions as f64 / dt_secs,
                predicted_wait_ns: if arrivals == 0 {
                    0.0
                } else {
                    mean_depth / arrival_rate * 1e9
                },
            }
        })
        .collect()
}

/// A bounded ring of [`TickSnapshot`]s over one [`ShardLoadBank`] —
/// the store behind `/timeseries.json` and `/shards.json`.
#[derive(Debug)]
pub struct TimeSeries {
    bank: Arc<ShardLoadBank>,
    capacity: usize,
    interval: Duration,
    ring: Mutex<VecDeque<TickSnapshot>>,
}

impl TimeSeries {
    /// A ring of at most `capacity` snapshots (clamped to at least
    /// two — gauges need a window), sampled every `interval` by
    /// [`TimeSeries::start_sampler`].
    pub fn new(bank: Arc<ShardLoadBank>, capacity: usize, interval: Duration) -> TimeSeries {
        let capacity = capacity.max(2);
        TimeSeries { bank, capacity, interval, ring: Mutex::new(VecDeque::with_capacity(capacity)) }
    }

    /// The bank this series samples.
    pub fn bank(&self) -> &Arc<ShardLoadBank> {
        &self.bank
    }

    /// The configured sampling interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Snapshots currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("timeseries ring lock").len()
    }

    /// Whether the ring holds no snapshots yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take one snapshot of the bank now and push it, evicting the
    /// oldest once the ring is full.
    pub fn sample_now(&self) {
        self.push(TickSnapshot { t_ns: self.bank.elapsed_ns(), shards: self.bank.sample() });
    }

    /// Push an explicit snapshot — the deterministic entry point unit
    /// tests use in place of the wall clock.
    pub fn push(&self, tick: TickSnapshot) {
        let mut ring = self.ring.lock().expect("timeseries ring lock");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(tick);
    }

    /// The retained snapshots, oldest first.
    pub fn ticks(&self) -> Vec<TickSnapshot> {
        self.ring.lock().expect("timeseries ring lock").iter().cloned().collect()
    }

    /// Derived per-shard gauges over the retained window. With fewer
    /// than two snapshots there is no window yet: depths come straight
    /// from the live bank and every rate is zero.
    pub fn gauges(&self) -> Vec<ShardGauge> {
        let derived = derive_gauges(&self.ticks());
        if !derived.is_empty() {
            return derived;
        }
        self.bank
            .sample()
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardGauge {
                shard,
                queue_depth: s.queue_depth,
                utilization_pct: 0.0,
                arrivals_per_sec: 0.0,
                completions_per_sec: 0.0,
                predicted_wait_ns: 0.0,
            })
            .collect()
    }

    /// The `/timeseries.json` body: the ring dump, oldest snapshot
    /// first. An empty ring renders `"samples":[]`, never an error.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"interval_ms\":");
        out.push_str(&self.interval.as_millis().to_string());
        out.push_str(",\"samples\":[");
        for (i, tick) in self.ticks().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"t_ms\":");
            out.push_str(&(tick.t_ns / 1_000_000).to_string());
            out.push_str(",\"shards\":[");
            for (j, s) in tick.shards.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json::object_u64(&[
                    ("queue_depth", s.queue_depth),
                    ("arrivals", s.arrivals),
                    ("completions", s.completions),
                    ("busy_ns", s.busy_ns),
                ]));
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }

    /// The `/shards.json` body: current per-shard gauges plus the
    /// window they were derived over.
    pub fn shards_json(&self) -> String {
        let ticks = self.ticks();
        let window_ms = match (ticks.first(), ticks.last()) {
            (Some(a), Some(b)) => b.t_ns.saturating_sub(a.t_ns) / 1_000_000,
            _ => 0,
        };
        let mut out = String::from("{\"window_ms\":");
        out.push_str(&window_ms.to_string());
        out.push_str(",\"shards\":[");
        for (i, g) in self.gauges().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"shard\":");
            out.push_str(&g.shard.to_string());
            out.push_str(",\"queue_depth\":");
            out.push_str(&g.queue_depth.to_string());
            out.push_str(",\"utilization_pct\":");
            json::push_f64(&mut out, g.utilization_pct);
            out.push_str(",\"arrivals_per_sec\":");
            json::push_f64(&mut out, g.arrivals_per_sec);
            out.push_str(",\"completions_per_sec\":");
            json::push_f64(&mut out, g.completions_per_sec);
            out.push_str(",\"predicted_wait_ns\":");
            json::push_f64(&mut out, g.predicted_wait_ns);
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    /// Spawn the sampler thread: one [`TimeSeries::sample_now`] per
    /// interval until the handle is stopped (or dropped).
    pub fn start_sampler(self: &Arc<Self>) -> SamplerHandle {
        let series = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let interval = self.interval;
        let handle = std::thread::Builder::new()
            .name("cfgtag-saturation".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    series.sample_now();
                }
            })
            .expect("spawn saturation sampler");
        SamplerHandle { stop, handle: Some(handle) }
    }
}

/// A running time-series sampler thread; stop it explicitly or by drop.
#[derive(Debug)]
pub struct SamplerHandle {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl SamplerHandle {
    /// Stop sampling and join the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            let _ = handle.join();
        }
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(t_ms: u64, shards: &[(u64, u64, u64, u64)]) -> TickSnapshot {
        TickSnapshot {
            t_ns: t_ms * 1_000_000,
            shards: shards
                .iter()
                .map(|&(queue_depth, arrivals, completions, busy_ns)| ShardSample {
                    queue_depth,
                    arrivals,
                    completions,
                    busy_ns,
                })
                .collect(),
        }
    }

    fn series(capacity: usize) -> TimeSeries {
        TimeSeries::new(Arc::new(ShardLoadBank::new(2)), capacity, Duration::from_millis(10))
    }

    #[test]
    fn bank_counts_and_derives_depth() {
        let bank = ShardLoadBank::new(2);
        bank.arrive(0);
        bank.arrive(0);
        bank.arrive(1);
        bank.dequeue(0);
        bank.record_work(0, 500, true);
        bank.record_work(1, 300, false);
        let s = bank.sample();
        assert_eq!(s[0], ShardSample { queue_depth: 1, arrivals: 2, completions: 1, busy_ns: 500 });
        assert_eq!(s[1], ShardSample { queue_depth: 1, arrivals: 1, completions: 0, busy_ns: 300 });
        // Out-of-range shard indices are ignored, not panics.
        bank.arrive(9);
        bank.dequeue(9);
        bank.record_work(9, 1, true);
        assert_eq!(bank.sample().len(), 2);
    }

    #[test]
    fn ring_wraps_at_capacity_keeping_newest() {
        let ts = series(3);
        for i in 0..7u64 {
            ts.push(tick(i, &[(0, i, i, 0)]));
        }
        let ticks = ts.ticks();
        assert_eq!(ticks.len(), 3);
        let t_ms: Vec<u64> = ticks.iter().map(|t| t.t_ns / 1_000_000).collect();
        assert_eq!(t_ms, vec![4, 5, 6], "oldest snapshots evicted first");
    }

    #[test]
    fn live_snapshots_are_monotonic() {
        let bank = Arc::new(ShardLoadBank::new(1));
        let ts = TimeSeries::new(Arc::clone(&bank), 8, Duration::from_millis(1));
        for round in 0..5u64 {
            bank.arrive(0);
            bank.dequeue(0);
            bank.record_work(0, 100 * (round + 1), true);
            ts.sample_now();
        }
        let ticks = ts.ticks();
        assert_eq!(ticks.len(), 5);
        for pair in ticks.windows(2) {
            assert!(pair[1].t_ns >= pair[0].t_ns, "timestamps march forward");
            let (a, b) = (&pair[0].shards[0], &pair[1].shards[0]);
            assert!(b.arrivals >= a.arrivals);
            assert!(b.completions >= a.completions);
            assert!(b.busy_ns > a.busy_ns, "busy time strictly grew each round");
        }
    }

    #[test]
    fn merge_fuses_shards_into_pool_view() {
        let t = tick(10, &[(2, 10, 8, 1_000), (3, 20, 17, 2_500)]);
        let merged = t.merged();
        assert_eq!(
            merged,
            ShardSample { queue_depth: 5, arrivals: 30, completions: 25, busy_ns: 3_500 }
        );
        assert_eq!(ShardSample::default().merge(&merged), merged);
    }

    #[test]
    fn gauges_derive_utilization_rates_and_littles_law() {
        // 1s window, shard 0: 50% busy, 100 arrivals, depth steady at 4.
        let window = [
            tick(0, &[(4, 0, 0, 0)]),
            tick(500, &[(4, 50, 46, 250_000_000)]),
            tick(1000, &[(4, 100, 96, 500_000_000)]),
        ];
        let g = derive_gauges(&window);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].queue_depth, 4);
        assert!((g[0].utilization_pct - 50.0).abs() < 1e-9, "{:?}", g[0]);
        assert!((g[0].arrivals_per_sec - 100.0).abs() < 1e-9);
        assert!((g[0].completions_per_sec - 96.0).abs() < 1e-9);
        // Little: mean depth 4 / 100 per sec = 40ms predicted wait.
        assert!((g[0].predicted_wait_ns - 40_000_000.0).abs() < 1.0, "{:?}", g[0]);
    }

    #[test]
    fn gauges_handle_degenerate_windows() {
        assert!(derive_gauges(&[]).is_empty());
        assert!(derive_gauges(&[tick(5, &[(1, 1, 1, 1)])]).is_empty(), "one tick is no window");
        let same_instant = [tick(5, &[(1, 1, 1, 1)]), tick(5, &[(2, 2, 2, 2)])];
        assert!(derive_gauges(&same_instant).is_empty(), "zero-width window");
        // An idle window predicts zero wait rather than dividing by zero.
        let idle = [tick(0, &[(0, 10, 10, 0)]), tick(1000, &[(0, 10, 10, 0)])];
        let g = derive_gauges(&idle);
        assert_eq!(g[0].predicted_wait_ns, 0.0);
        assert_eq!(g[0].arrivals_per_sec, 0.0);
    }

    #[test]
    fn empty_ring_renders_empty_samples_array() {
        let ts = series(4);
        let body = ts.to_json();
        let v = json::Json::parse(&body).unwrap();
        assert_eq!(v.get("samples").unwrap().as_array().unwrap().len(), 0);
        assert_eq!(v.get("interval_ms").unwrap().as_u64(), Some(10));
        // Gauges without a window fall back to live depths + zero rates.
        let shards = json::Json::parse(&ts.shards_json()).unwrap();
        let rows = shards.get("shards").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("utilization_pct").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn json_round_trips_through_parser() {
        let ts = series(4);
        ts.push(tick(1, &[(1, 2, 1, 100), (0, 3, 3, 200)]));
        ts.push(tick(11, &[(2, 6, 3, 900), (0, 7, 7, 1_100)]));
        let v = json::Json::parse(&ts.to_json()).unwrap();
        let samples = v.get("samples").unwrap().as_array().unwrap();
        assert_eq!(samples.len(), 2);
        let shard1 = &samples[1].get("shards").unwrap().as_array().unwrap()[0];
        assert_eq!(shard1.get("queue_depth").unwrap().as_u64(), Some(2));
        assert_eq!(shard1.get("busy_ns").unwrap().as_u64(), Some(900));
        let g = json::Json::parse(&ts.shards_json()).unwrap();
        assert_eq!(g.get("window_ms").unwrap().as_u64(), Some(10));
        let rows = g.get("shards").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].get("predicted_wait_ns").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn disabled_bank_reports_but_sampler_still_runs() {
        let bank = Arc::new(ShardLoadBank::new(1));
        bank.set_enabled(false);
        assert!(!bank.enabled());
        // Callers gate on enabled(); the bank itself never refuses.
        let ts = Arc::new(TimeSeries::new(Arc::clone(&bank), 4, Duration::from_millis(1)));
        let sampler = ts.start_sampler();
        for _ in 0..200 {
            if ts.len() >= 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        sampler.stop();
        assert!(ts.len() >= 2, "sampler thread produced snapshots");
        assert!(ts.ticks().iter().all(|t| t.shards[0].arrivals == 0));
    }
}
