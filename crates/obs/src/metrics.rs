//! The `Metrics` handle held by instrumented components, and the
//! drop-guard span timer.

use crate::sink::{MetricsSink, Stat};
use crate::trace::TraceEvent;
use std::sync::Arc;
use std::time::Instant;

/// A cloneable handle to an optional metrics sink.
///
/// This is the type components store. When built with [`Metrics::off`]
/// (the `Default`), every method is a branch on a local `Option` and
/// nothing else — the compiler sees a `None` constant propagated into
/// the branch and eliminates the recording code from the hot path.
#[derive(Clone, Default)]
pub struct Metrics {
    sink: Option<Arc<dyn MetricsSink>>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics").field("on", &self.sink.is_some()).finish()
    }
}

impl Metrics {
    /// The disabled handle: recording methods do nothing.
    pub fn off() -> Metrics {
        Metrics { sink: None }
    }

    /// A handle recording into `sink`.
    pub fn new(sink: Arc<dyn MetricsSink>) -> Metrics {
        Metrics { sink: Some(sink) }
    }

    /// Whether a sink is installed at all (cheap; check once per buffer
    /// before doing per-event bookkeeping).
    #[inline]
    pub fn is_on(&self) -> bool {
        self.sink.is_some()
    }

    /// Whether the sink wants per-event detail. `false` both when off
    /// and when the sink is a discard-everything sink.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        match &self.sink {
            Some(s) => s.is_enabled(),
            None => false,
        }
    }

    /// Bump a counter.
    #[inline]
    pub fn add(&self, stat: Stat, n: u64) {
        if let Some(s) = &self.sink {
            s.add(stat, n);
        }
    }

    /// Record `n` fires of token `index`.
    #[inline]
    pub fn token_fire(&self, index: u32, n: u64) {
        if let Some(s) = &self.sink {
            s.token_fire(index, n);
        }
    }

    /// Record a histogram observation.
    #[inline]
    pub fn observe(&self, hist: &'static str, value: u64) {
        if let Some(s) = &self.sink {
            s.observe(hist, value);
        }
    }

    /// Record a span duration directly.
    #[inline]
    pub fn time(&self, span: &'static str, nanos: u64) {
        if let Some(s) = &self.sink {
            s.time(span, nanos);
        }
    }

    /// Append a trace event. The closure only runs when a sink is
    /// installed *and* it keeps traces ([`MetricsSink::wants_trace`]),
    /// so callers never build events that would be dropped.
    #[inline]
    pub fn trace(&self, build: impl FnOnce() -> TraceEvent) {
        if let Some(s) = &self.sink {
            if s.wants_trace() {
                s.trace(build());
            }
        }
    }

    /// Start a wall-clock span; the duration is recorded on drop.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard {
            metrics: self.clone(),
            name,
            started: if self.sink.is_some() { Some(Instant::now()) } else { None },
        }
    }
}

/// Times a region from creation to drop and reports it via
/// [`Metrics::time`]. Created by [`Metrics::span`].
#[derive(Debug)]
pub struct SpanGuard {
    metrics: Metrics,
    name: &'static str,
    started: Option<Instant>,
}

impl SpanGuard {
    /// Elapsed nanoseconds so far (0 when metrics are off).
    pub fn elapsed_nanos(&self) -> u64 {
        self.started.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(started) = self.started.take() {
            self.metrics.time(self.name, started.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StatsSink;

    #[test]
    fn off_handle_is_inert() {
        let m = Metrics::off();
        assert!(!m.is_on());
        assert!(!m.is_enabled());
        m.add(Stat::BytesIn, 10);
        m.token_fire(0, 1);
        m.observe("h", 1);
        m.time("s", 1);
        let mut built = false;
        m.trace(|| {
            built = true;
            TraceEvent::new("never")
        });
        assert!(!built, "trace closure must not run when metrics are off");
        drop(m.span("span"));
    }

    #[test]
    fn on_handle_records() {
        let sink = Arc::new(StatsSink::with_tokens(2));
        let m = Metrics::new(sink.clone());
        assert!(m.is_on());
        assert!(m.is_enabled());
        m.add(Stat::BytesIn, 5);
        m.token_fire(1, 2);
        m.trace(|| TraceEvent::new("e"));
        {
            let _g = m.span("work");
        }
        assert_eq!(sink.get(Stat::BytesIn), 5);
        assert_eq!(sink.token_fires(1), 2);
        assert_eq!(sink.trace_events().len(), 1);
        let snap = sink.snapshot();
        assert_eq!(snap.timings.len(), 1);
        assert_eq!(snap.timings[0].0, "work");
    }

    #[test]
    fn traceless_sink_skips_the_build_closure() {
        let sink = Arc::new(StatsSink::new().with_trace_capacity(0));
        let m = Metrics::new(sink.clone());
        let mut built = false;
        m.trace(|| {
            built = true;
            TraceEvent::new("never")
        });
        assert!(!built, "zero-capacity ring must not build trace events");
        assert_eq!(sink.snapshot().trace_dropped, 0, "nothing offered, nothing dropped");
    }

    #[test]
    fn noop_sink_is_on_but_not_enabled() {
        let m = Metrics::new(Arc::new(crate::sink::NoopSink));
        assert!(m.is_on());
        assert!(!m.is_enabled());
    }

    #[test]
    fn clones_share_the_sink() {
        let sink = Arc::new(StatsSink::new());
        let a = Metrics::new(sink.clone());
        let b = a.clone();
        a.add(Stat::BytesIn, 1);
        b.add(Stat::BytesIn, 2);
        assert_eq!(sink.get(Stat::BytesIn), 3);
    }
}
