//! ILA-style triggered capture: arm on a condition, capture a pre/post
//! window of trace events around the moment it fires.
//!
//! On an FPGA this is ChipScope: a probe watches a signal, and when the
//! trigger condition is met the surrounding samples are frozen and read
//! out. Here the "signal" is the trace-event stream: a [`TriggerHub`]
//! sits on the metrics tee, mirrors every event into its own
//! [`FlightRecorder`] ring, and when the armed [`TriggerCondition`]
//! matches it snapshots the ring (the *pre* window, which already ends
//! with the triggering event) and keeps collecting until the *post*
//! window is full.

use crate::flight::{push_seq_line, FlightRecorder};
use crate::sink::MetricsSink;
use crate::trace::{TraceEvent, Value};
use std::sync::{Arc, Mutex};

/// What arms a capture.
#[derive(Debug, Clone, PartialEq)]
pub enum TriggerCondition {
    /// A `token_fire` event for any of these token indices
    /// (`token:<name>`).
    TokenFire(Vec<u32>),
    /// A `follow_edge` traversal matching any of these `(from, to)`
    /// token-index pairs (`edge:<from>-><to>`).
    Edge(Vec<(u32, u32)>),
    /// The stream entering the dead state (`dead`).
    Dead,
}

impl TriggerCondition {
    /// Parse a condition string against the tagger's token names.
    ///
    /// Accepted forms: `token:<name>`, `edge:<from>-><to>`, `dead`.
    /// Names match a token exactly, or its base name when the grammar
    /// mints context-qualified variants (`name@2` matches `name`).
    pub fn parse(spec: &str, token_names: &[String]) -> Result<TriggerCondition, String> {
        let indices_of = |pat: &str| -> Vec<u32> {
            token_names
                .iter()
                .enumerate()
                .filter(|(_, n)| n.as_str() == pat || n.split('@').next() == Some(pat))
                .map(|(i, _)| i as u32)
                .collect()
        };
        if spec == "dead" {
            return Ok(TriggerCondition::Dead);
        }
        if let Some(name) = spec.strip_prefix("token:") {
            let hits = indices_of(name);
            if hits.is_empty() {
                return Err(format!(
                    "trigger: unknown token {name:?} (try one of: {})",
                    token_names.join(", ")
                ));
            }
            return Ok(TriggerCondition::TokenFire(hits));
        }
        if let Some(edge) = spec.strip_prefix("edge:") {
            let (from, to) = edge.split_once("->").ok_or_else(|| {
                format!("trigger: edge condition needs <from>-><to>, got {edge:?}")
            })?;
            let froms = indices_of(from);
            let tos = indices_of(to);
            if froms.is_empty() || tos.is_empty() {
                let bad = if froms.is_empty() { from } else { to };
                return Err(format!("trigger: unknown token {bad:?} in edge condition"));
            }
            let mut pairs = Vec::new();
            for &f in &froms {
                for &t in &tos {
                    pairs.push((f, t));
                }
            }
            return Ok(TriggerCondition::Edge(pairs));
        }
        Err(format!(
            "trigger: unknown condition {spec:?} (want token:<name>, edge:<from>-><to>, or dead)"
        ))
    }

    /// Whether a trace event satisfies this condition.
    pub fn matches(&self, event: &TraceEvent) -> bool {
        let get = |key: &str| {
            event.fields.iter().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
                Value::U(x) => Some(*x as u32),
                Value::I(x) => Some(*x as u32),
                _ => None,
            })
        };
        match self {
            TriggerCondition::TokenFire(set) => {
                event.kind == "token_fire" && get("token").is_some_and(|t| set.contains(&t))
            }
            TriggerCondition::Edge(pairs) => {
                event.kind == "follow_edge"
                    && match (get("from"), get("to")) {
                        (Some(f), Some(t)) => pairs.contains(&(f, t)),
                        _ => false,
                    }
            }
            TriggerCondition::Dead => event.kind == "dead_entry",
        }
    }
}

#[derive(Debug)]
enum CaptureState {
    Armed,
    Capturing { events: Vec<(u64, TraceEvent)>, remaining: usize },
    Complete(Vec<(u64, TraceEvent)>),
}

/// One armed capture: a condition plus a pre/post window.
#[derive(Debug)]
pub struct Trigger {
    cond: TriggerCondition,
    pre: usize,
    post: usize,
    state: Mutex<CaptureState>,
}

impl Trigger {
    fn new(cond: TriggerCondition, pre: usize, post: usize) -> Trigger {
        Trigger { cond, pre, post, state: Mutex::new(CaptureState::Armed) }
    }

    /// The armed condition.
    pub fn condition(&self) -> &TriggerCondition {
        &self.cond
    }

    /// Whether the condition has fired (capture may still be filling).
    pub fn fired(&self) -> bool {
        !matches!(*self.state.lock().unwrap(), CaptureState::Armed)
    }

    /// Whether the post window is full and the capture is readable.
    pub fn complete(&self) -> bool {
        matches!(*self.state.lock().unwrap(), CaptureState::Complete(_))
    }

    /// Offer one event (already recorded in `ring` under `seq`). The
    /// ring snapshot taken at trigger time *includes* the triggering
    /// event, so the capture window always contains it.
    fn offer(&self, seq: u64, event: &TraceEvent, ring: &FlightRecorder) {
        let mut state = self.state.lock().unwrap();
        match &mut *state {
            CaptureState::Armed => {
                if !self.cond.matches(event) {
                    return;
                }
                let mut events = ring.events();
                // Keep `pre` events of history plus the trigger itself.
                if events.len() > self.pre + 1 {
                    events.drain(..events.len() - (self.pre + 1));
                }
                *state = if self.post == 0 {
                    CaptureState::Complete(events)
                } else {
                    CaptureState::Capturing { events, remaining: self.post }
                };
            }
            CaptureState::Capturing { events, remaining } => {
                events.push((seq, event.clone()));
                *remaining -= 1;
                if *remaining == 0 {
                    let done = std::mem::take(events);
                    *state = CaptureState::Complete(done);
                }
            }
            CaptureState::Complete(_) => {}
        }
    }

    /// Force completion with whatever has been captured so far (used at
    /// stream end so a fired-but-unfilled post window is still
    /// readable). No-op while still armed.
    pub fn flush(&self) {
        let mut state = self.state.lock().unwrap();
        if let CaptureState::Capturing { events, .. } = &mut *state {
            let done = std::mem::take(events);
            *state = CaptureState::Complete(done);
        }
    }

    /// The completed capture as `{"seq":N,...}` JSON lines (oldest
    /// first, trailing newline), or `None` until [`Trigger::complete`].
    pub fn capture_jsonl(&self) -> Option<String> {
        match &*self.state.lock().unwrap() {
            CaptureState::Complete(events) => {
                let mut out = String::new();
                for (seq, event) in events {
                    push_seq_line(&mut out, *seq, event);
                }
                Some(out)
            }
            _ => None,
        }
    }
}

/// The trigger hub: a [`MetricsSink`] that mirrors the trace stream
/// into its own ring and drives at most one armed [`Trigger`].
///
/// Tee it in next to the stats sink; arming and reading out happen from
/// the exporter thread while the engine keeps streaming.
#[derive(Debug)]
pub struct TriggerHub {
    token_names: Vec<String>,
    ring: FlightRecorder,
    active: Mutex<Option<Arc<Trigger>>>,
}

impl TriggerHub {
    /// A hub resolving condition strings against these token names.
    pub fn new(token_names: Vec<String>) -> TriggerHub {
        TriggerHub { token_names, ring: FlightRecorder::default(), active: Mutex::new(None) }
    }

    /// The token names conditions are resolved against.
    pub fn token_names(&self) -> &[String] {
        &self.token_names
    }

    /// Arm a capture (replacing any previous one): `spec` is a
    /// [`TriggerCondition`] string, `pre`/`post` size the window.
    pub fn arm(&self, spec: &str, pre: usize, post: usize) -> Result<Arc<Trigger>, String> {
        let cond = TriggerCondition::parse(spec, &self.token_names)?;
        let trigger = Arc::new(Trigger::new(cond, pre, post));
        *self.active.lock().unwrap() = Some(Arc::clone(&trigger));
        Ok(trigger)
    }

    /// The currently armed (or fired) trigger, if any.
    pub fn active(&self) -> Option<Arc<Trigger>> {
        self.active.lock().unwrap().clone()
    }

    /// The active trigger's completed capture, if it is readable.
    pub fn capture_jsonl(&self) -> Option<String> {
        self.active().and_then(|t| t.capture_jsonl())
    }

    /// Force-complete a fired capture at stream end (see
    /// [`Trigger::flush`]).
    pub fn flush(&self) {
        if let Some(t) = self.active() {
            t.flush();
        }
    }
}

impl MetricsSink for TriggerHub {
    fn time(&self, span: &'static str, nanos: u64) {
        self.trace(TraceEvent::new("span").field("name", span).field("nanos", nanos));
    }

    fn trace(&self, event: TraceEvent) {
        let seq = self.ring.record(event.clone());
        if let Some(trigger) = self.active() {
            trigger.offer(seq, &event, &self.ring);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        ["if", "true", "then", "go"].iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_conditions() {
        let n = names();
        assert_eq!(
            TriggerCondition::parse("token:go", &n),
            Ok(TriggerCondition::TokenFire(vec![3]))
        );
        assert_eq!(
            TriggerCondition::parse("edge:if->true", &n),
            Ok(TriggerCondition::Edge(vec![(0, 1)]))
        );
        assert_eq!(TriggerCondition::parse("dead", &n), Ok(TriggerCondition::Dead));
        assert!(TriggerCondition::parse("token:nope", &n).is_err());
        assert!(TriggerCondition::parse("edge:if>true", &n).is_err());
        assert!(TriggerCondition::parse("edge:if->nope", &n).is_err());
        assert!(TriggerCondition::parse("bogus", &n).is_err());
    }

    #[test]
    fn context_qualified_names_match_base() {
        let n = vec!["if".to_string(), "go@1".to_string(), "go@2".to_string()];
        assert_eq!(
            TriggerCondition::parse("token:go", &n),
            Ok(TriggerCondition::TokenFire(vec![1, 2]))
        );
    }

    #[test]
    fn capture_window_contains_the_trigger() {
        let hub = TriggerHub::new(names());
        let trigger = hub.arm("token:go", 2, 1).unwrap();
        for i in 0..5u32 {
            hub.trace(TraceEvent::new("token_fire").field("token", 0u32).field("i", i));
        }
        assert!(!trigger.fired());
        hub.trace(TraceEvent::new("token_fire").field("token", 3u32));
        assert!(trigger.fired());
        assert!(!trigger.complete());
        hub.trace(TraceEvent::new("span").field("name", "feed").field("nanos", 1u64));
        assert!(trigger.complete());
        let dump = hub.capture_jsonl().unwrap();
        // 2 pre + trigger + 1 post = 4 lines, trigger third.
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].contains("\"token\":3"));
        assert!(lines[3].contains("\"kind\":\"span\""));
        assert!(dump.ends_with('\n'));
    }

    #[test]
    fn zero_post_completes_immediately_and_rearming_replaces() {
        let hub = TriggerHub::new(names());
        let t1 = hub.arm("token:if", 8, 0).unwrap();
        hub.trace(TraceEvent::new("token_fire").field("token", 0u32));
        assert!(t1.complete());
        assert!(hub.capture_jsonl().unwrap().contains("\"token\":0"));
        // Re-arm: the hub drives the new trigger; the old Arc stays
        // readable.
        let t2 = hub.arm("dead", 0, 0).unwrap();
        hub.trace(TraceEvent::new("dead_entry").field("at", 9u64));
        assert!(t2.complete());
        assert!(t1.complete());
        let dump = hub.capture_jsonl().unwrap();
        assert_eq!(dump.lines().count(), 1);
        assert!(dump.contains("\"kind\":\"dead_entry\""));
    }

    #[test]
    fn edge_condition_fires_on_follow_edge_events() {
        let hub = TriggerHub::new(names());
        let trigger = hub.arm("edge:if->true", 0, 0).unwrap();
        hub.trace(TraceEvent::new("follow_edge").field("from", 0u32).field("to", 2u32));
        assert!(!trigger.fired());
        hub.trace(TraceEvent::new("follow_edge").field("from", 0u32).field("to", 1u32));
        assert!(trigger.complete());
    }

    #[test]
    fn flush_makes_a_partial_post_window_readable() {
        let hub = TriggerHub::new(names());
        let trigger = hub.arm("token:go", 0, 100).unwrap();
        hub.flush(); // still armed: no-op
        assert!(!trigger.fired());
        hub.trace(TraceEvent::new("token_fire").field("token", 3u32));
        assert!(trigger.fired() && !trigger.complete());
        hub.flush();
        assert!(trigger.complete());
        assert_eq!(hub.capture_jsonl().unwrap().lines().count(), 1);
    }
}
