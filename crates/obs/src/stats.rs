//! The recording sink: counters, token fires, histograms, timings, and
//! a bounded trace ring buffer.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::json;
use crate::sink::{MetricsSink, Stat};
use crate::trace::{to_jsonl, TraceEvent};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default capacity of the trace ring buffer.
const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// A sink that actually records.
///
/// Counters and token fires are plain relaxed atomics (lock-free);
/// histograms, timings, and the trace ring buffer take a `Mutex` but
/// sit on per-message or per-stage paths, never per-byte ones.
#[derive(Debug)]
pub struct StatsSink {
    counters: [AtomicU64; Stat::COUNT],
    token_fires: Vec<AtomicU64>,
    histograms: Mutex<Vec<(&'static str, Histogram)>>,
    timings: Mutex<Vec<(&'static str, u64)>>,
    trace: Mutex<VecDeque<TraceEvent>>,
    trace_capacity: usize,
    trace_dropped: AtomicU64,
}

impl Default for StatsSink {
    fn default() -> Self {
        StatsSink::new()
    }
}

impl StatsSink {
    /// A sink with no per-token counters and the default trace capacity.
    pub fn new() -> StatsSink {
        StatsSink::with_tokens(0)
    }

    /// A sink tracking per-token fire counts for token indices
    /// `0..tokens`; fires of out-of-range indices only bump the
    /// aggregate counter.
    pub fn with_tokens(tokens: usize) -> StatsSink {
        StatsSink {
            counters: [(); Stat::COUNT].map(|_| AtomicU64::new(0)),
            token_fires: (0..tokens).map(|_| AtomicU64::new(0)).collect(),
            histograms: Mutex::new(Vec::new()),
            timings: Mutex::new(Vec::new()),
            trace: Mutex::new(VecDeque::new()),
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            trace_dropped: AtomicU64::new(0),
        }
    }

    /// Override the trace ring-buffer capacity (0 disables tracing).
    pub fn with_trace_capacity(mut self, capacity: usize) -> StatsSink {
        self.trace_capacity = capacity;
        self
    }

    /// Current value of one counter.
    pub fn get(&self, stat: Stat) -> u64 {
        self.counters[stat as usize].load(Ordering::Relaxed)
    }

    /// Current fire count of one token (0 if untracked).
    pub fn token_fires(&self, index: u32) -> u64 {
        self.token_fires.get(index as usize).map(|c| c.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Copy out the trace buffer (oldest first).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.lock().unwrap().iter().cloned().collect()
    }

    /// Encode the trace buffer as JSON lines.
    pub fn trace_jsonl(&self) -> String {
        to_jsonl(&self.trace_events())
    }

    /// Take a plain-data snapshot of everything recorded so far.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            counters: Stat::ALL.iter().map(|s| (s.name(), self.get(*s))).collect(),
            token_fires: self.token_fires.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(name, h)| (*name, h.snapshot()))
                .collect(),
            timings: self.timings.lock().unwrap().clone(),
            trace_dropped: self.trace_dropped.load(Ordering::Relaxed),
        }
    }
}

impl MetricsSink for StatsSink {
    fn add(&self, stat: Stat, n: u64) {
        self.counters[stat as usize].fetch_add(n, Ordering::Relaxed);
    }

    fn token_fire(&self, index: u32, n: u64) {
        self.counters[Stat::EventsOut as usize].fetch_add(n, Ordering::Relaxed);
        if let Some(c) = self.token_fires.get(index as usize) {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn observe(&self, hist: &'static str, value: u64) {
        let mut hists = self.histograms.lock().unwrap();
        if let Some((_, h)) = hists.iter().find(|(name, _)| *name == hist) {
            h.record(value);
        } else {
            let h = Histogram::default();
            h.record(value);
            hists.push((hist, h));
        }
    }

    fn time(&self, span: &'static str, nanos: u64) {
        self.timings.lock().unwrap().push((span, nanos));
    }

    fn wants_trace(&self) -> bool {
        self.trace_capacity > 0
    }

    fn trace(&self, event: TraceEvent) {
        if self.trace_capacity == 0 {
            self.trace_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut buf = self.trace.lock().unwrap();
        if buf.len() >= self.trace_capacity {
            buf.pop_front();
            self.trace_dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event);
    }
}

/// Plain-data view of a [`StatsSink`], suitable for rendering.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// `(name, value)` for every [`Stat`], in index order.
    pub counters: Vec<(&'static str, u64)>,
    /// Fire count per token index.
    pub token_fires: Vec<u64>,
    /// Named histograms.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
    /// Recorded span timings `(name, nanos)`, in recording order.
    pub timings: Vec<(&'static str, u64)>,
    /// Events evicted from (or refused by) the trace ring buffer.
    pub trace_dropped: u64,
}

impl StatsSnapshot {
    /// An all-zero snapshot covering every [`Stat`] — the identity
    /// element for [`StatsSnapshot::merge`].
    pub fn empty() -> StatsSnapshot {
        StatsSnapshot {
            counters: Stat::ALL.iter().map(|s| (s.name(), 0)).collect(),
            token_fires: Vec::new(),
            histograms: Vec::new(),
            timings: Vec::new(),
            trace_dropped: 0,
        }
    }

    /// Look up a counter by its [`Stat`] name.
    pub fn counter(&self, stat: Stat) -> u64 {
        self.counters.iter().find(|(name, _)| *name == stat.name()).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Fold another snapshot into this one: counters and per-token
    /// fires add element-wise (the fire vector grows to the longer of
    /// the two), histograms merge by name, timings concatenate, and
    /// `trace_dropped` accumulates. Point-in-time merged views over
    /// many sinks are built by folding from [`StatsSnapshot::empty`].
    pub fn merge(&mut self, other: &StatsSnapshot) {
        for (name, v) in &other.counters {
            if let Some((_, mine)) = self.counters.iter_mut().find(|(n, _)| n == name) {
                *mine += *v;
            } else {
                self.counters.push((name, *v));
            }
        }
        if other.token_fires.len() > self.token_fires.len() {
            self.token_fires.resize(other.token_fires.len(), 0);
        }
        for (mine, theirs) in self.token_fires.iter_mut().zip(other.token_fires.iter()) {
            *mine += *theirs;
        }
        for (name, h) in &other.histograms {
            if let Some((_, mine)) = self.histograms.iter_mut().find(|(n, _)| n == name) {
                mine.merge(h);
            } else {
                self.histograms.push((name, h.clone()));
            }
        }
        self.timings.extend_from_slice(&other.timings);
        self.trace_dropped += other.trace_dropped;
    }

    /// The change since an `earlier` snapshot of the same sink(s):
    /// counters, fires and histogram buckets subtract (saturating, so a
    /// sink restart shows as zero rather than wrapping), and only span
    /// timings recorded after the earlier snapshot are kept. Feeding
    /// the result's counters and an elapsed wall-clock interval into a
    /// divide is how `cfgtag top` turns two scrapes into live rates.
    pub fn diff(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let at = |name: &str, set: &[(&'static str, u64)]| {
            set.iter().find(|(n, _)| *n == name).map(|(_, v)| *v).unwrap_or(0)
        };
        StatsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, v)| (*name, v.saturating_sub(at(name, &earlier.counters))))
                .collect(),
            token_fires: self
                .token_fires
                .iter()
                .enumerate()
                .map(|(i, v)| v.saturating_sub(earlier.token_fires.get(i).copied().unwrap_or(0)))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| {
                    let d = match earlier.histogram(name) {
                        Some(e) => HistogramSnapshot {
                            buckets: h
                                .buckets
                                .iter()
                                .enumerate()
                                .map(|(i, b)| {
                                    b.saturating_sub(e.buckets.get(i).copied().unwrap_or(0))
                                })
                                .collect(),
                            count: h.count.saturating_sub(e.count),
                            sum: h.sum.saturating_sub(e.sum),
                            max: h.max,
                        },
                        None => h.clone(),
                    };
                    (*name, d)
                })
                .collect(),
            timings: self.timings.get(earlier.timings.len()..).unwrap_or(&[]).to_vec(),
            trace_dropped: self.trace_dropped.saturating_sub(earlier.trace_dropped),
        }
    }

    /// Encode the whole snapshot as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":");
        out.push_str(&json::object_u64(
            &self.counters.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>(),
        ));
        out.push_str(",\"token_fires\":[");
        for (i, v) in self.token_fires.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push_str("],\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, name);
            out.push(':');
            out.push_str(&h.to_json());
        }
        out.push_str("},\"timings\":[");
        for (i, (name, nanos)) in self.timings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"span\":");
            json::push_str(&mut out, name);
            out.push_str(&format!(",\"nanos\":{nanos}}}"));
        }
        out.push_str(&format!("],\"trace_dropped\":{}}}", self.trace_dropped));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = StatsSink::new();
        s.add(Stat::BytesIn, 100);
        s.add(Stat::BytesIn, 28);
        s.add(Stat::Resyncs, 1);
        assert_eq!(s.get(Stat::BytesIn), 128);
        assert_eq!(s.get(Stat::Resyncs), 1);
        assert_eq!(s.get(Stat::EventsOut), 0);
    }

    #[test]
    fn token_fires_tracked_and_aggregated() {
        let s = StatsSink::with_tokens(4);
        s.token_fire(0, 2);
        s.token_fire(3, 1);
        s.token_fire(99, 5); // out of range: aggregate only
        assert_eq!(s.token_fires(0), 2);
        assert_eq!(s.token_fires(3), 1);
        assert_eq!(s.token_fires(99), 0);
        assert_eq!(s.get(Stat::EventsOut), 8);
    }

    #[test]
    fn trace_ring_buffer_evicts_oldest() {
        let s = StatsSink::new().with_trace_capacity(2);
        s.trace(TraceEvent::new("a"));
        s.trace(TraceEvent::new("b"));
        s.trace(TraceEvent::new("c"));
        let events = s.trace_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "b");
        assert_eq!(events[1].kind, "c");
        assert_eq!(s.snapshot().trace_dropped, 1);
        assert_eq!(s.trace_jsonl().lines().count(), 2);
    }

    #[test]
    fn snapshot_json_is_complete() {
        let s = StatsSink::with_tokens(2);
        s.add(Stat::BytesIn, 7);
        s.token_fire(1, 3);
        s.observe("latency", 10);
        s.time("compile", 1234);
        let snap = s.snapshot();
        assert_eq!(snap.counter(Stat::BytesIn), 7);
        assert_eq!(snap.token_fires, vec![0, 3]);
        let json = snap.to_json();
        assert!(json.contains("\"bytes_in\":7"));
        assert!(json.contains("\"token_fires\":[0,3]"));
        assert!(json.contains("\"latency\""));
        assert!(json.contains("\"span\":\"compile\",\"nanos\":1234"));
    }

    #[test]
    fn snapshot_merge_folds_counters_fires_and_histograms() {
        let a = StatsSink::with_tokens(2);
        a.add(Stat::BytesIn, 10);
        a.token_fire(0, 1);
        a.observe("lat", 4);
        let b = StatsSink::with_tokens(3);
        b.add(Stat::BytesIn, 5);
        b.add(Stat::Resyncs, 2);
        b.token_fire(2, 7);
        b.observe("lat", 8);
        b.observe("other", 1);
        let mut m = StatsSnapshot::empty();
        m.merge(&a.snapshot());
        m.merge(&b.snapshot());
        assert_eq!(m.counter(Stat::BytesIn), 15);
        assert_eq!(m.counter(Stat::Resyncs), 2);
        assert_eq!(m.token_fires, vec![1, 0, 7]);
        assert_eq!(m.histogram("lat").unwrap().count, 2);
        assert_eq!(m.histogram("lat").unwrap().sum, 12);
        assert_eq!(m.histogram("other").unwrap().count, 1);
        assert!(m.histogram("missing").is_none());
    }

    #[test]
    fn snapshot_diff_yields_deltas() {
        let s = StatsSink::with_tokens(1);
        s.add(Stat::BytesIn, 100);
        s.token_fire(0, 3);
        s.observe("lat", 2);
        s.time("feed", 10);
        let t0 = s.snapshot();
        s.add(Stat::BytesIn, 50);
        s.token_fire(0, 1);
        s.observe("lat", 4);
        s.time("feed", 20);
        let t1 = s.snapshot();
        let d = t1.diff(&t0);
        assert_eq!(d.counter(Stat::BytesIn), 50);
        assert_eq!(d.token_fires, vec![1]);
        assert_eq!(d.histogram("lat").unwrap().count, 1);
        assert_eq!(d.histogram("lat").unwrap().sum, 4);
        assert_eq!(d.timings, vec![("feed", 20)]);
        // Diffing against a later snapshot saturates to zero.
        let z = t0.diff(&t1);
        assert_eq!(z.counter(Stat::BytesIn), 0);
        assert_eq!(z.token_fires, vec![0]);
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let s = Arc::new(StatsSink::with_tokens(1));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.add(Stat::BytesIn, 1);
                        s.token_fire(0, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.get(Stat::BytesIn), 4000);
        assert_eq!(s.token_fires(0), 4000);
        assert_eq!(s.get(Stat::EventsOut), 4000);
    }
}
