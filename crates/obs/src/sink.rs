//! The sink trait implemented by metric backends, the well-known
//! counter names, and the do-nothing sink.

use crate::trace::TraceEvent;

/// Well-known counters recorded by the instrumented components.
///
/// Using a closed enum (rather than string keys) keeps the hot-path
/// cost of a counter bump at "atomic add at a fixed index" and makes
/// snapshots exhaustively enumerable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stat {
    /// Bytes consumed by a streaming engine (`FastEngine`,
    /// `GateEngine`, `WideTagger`).
    BytesIn,
    /// Tag events emitted (token fires), across all tokens.
    EventsOut,
    /// §5.2 error-recovery resynchronisations taken by `FastEngine`.
    Resyncs,
    /// Transitions from "some state live" to "no state live" while
    /// recovery is off (the stream is stuck until a new delimiter).
    DeadEntries,
    /// Clock cycles simulated by the gate-level engine.
    GateCycles,
    /// Positions where the gate-level and table-driven engines were
    /// compared and disagreed (should stay 0).
    GateFastDivergence,
    /// Parser runs that accepted their input.
    ParseAccepts,
    /// Parser runs that rejected their input.
    ParseRejects,
    /// XML-RPC messages routed to the bank service.
    RouteBank,
    /// XML-RPC messages routed to the shop service.
    RouteShop,
    /// XML-RPC messages with no recognised method name.
    RouteUnknown,
    /// Streams rejected as malformed by the router front-end.
    MalformedRejected,
    /// Supervised shard workers restarted after catching a panic.
    WorkerRestarts,
    /// Messages (or connections) shed with an explicit BUSY instead of
    /// blocking — the ingest server's overload valve.
    LoadShed,
    /// Sessions evicted by the ingest server's idle-timeout janitor.
    SessionsEvicted,
    /// Close-drain deadlines that fired with frames still pending —
    /// the client got its `Bye` before every ack was written.
    DrainTimeouts,
    /// Non-empty `epoll_wait` returns taken by the reactor io-model —
    /// against accepted frames, the batching factor of the event loop.
    ReactorWakeups,
}

impl Stat {
    /// Number of variants (sizes the counter array in `StatsSink`).
    pub const COUNT: usize = 17;

    /// All variants, in index order.
    pub const ALL: [Stat; Stat::COUNT] = [
        Stat::BytesIn,
        Stat::EventsOut,
        Stat::Resyncs,
        Stat::DeadEntries,
        Stat::GateCycles,
        Stat::GateFastDivergence,
        Stat::ParseAccepts,
        Stat::ParseRejects,
        Stat::RouteBank,
        Stat::RouteShop,
        Stat::RouteUnknown,
        Stat::MalformedRejected,
        Stat::WorkerRestarts,
        Stat::LoadShed,
        Stat::SessionsEvicted,
        Stat::DrainTimeouts,
        Stat::ReactorWakeups,
    ];

    /// Stable snake_case name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Stat::BytesIn => "bytes_in",
            Stat::EventsOut => "events_out",
            Stat::Resyncs => "resyncs",
            Stat::DeadEntries => "dead_entries",
            Stat::GateCycles => "gate_cycles",
            Stat::GateFastDivergence => "gate_fast_divergence",
            Stat::ParseAccepts => "parse_accepts",
            Stat::ParseRejects => "parse_rejects",
            Stat::RouteBank => "route_bank",
            Stat::RouteShop => "route_shop",
            Stat::RouteUnknown => "route_unknown",
            Stat::MalformedRejected => "malformed_rejected",
            Stat::WorkerRestarts => "worker_restarts",
            Stat::LoadShed => "load_shed",
            Stat::SessionsEvicted => "sessions_evicted",
            Stat::DrainTimeouts => "drain_timeouts",
            Stat::ReactorWakeups => "reactor_wakeups",
        }
    }
}

/// A metrics backend. All methods default to no-ops so sinks only
/// implement what they care about; implementations must be thread-safe
/// because engines may be driven from multiple threads.
pub trait MetricsSink: Send + Sync {
    /// Bump a well-known counter by `n`.
    fn add(&self, _stat: Stat, _n: u64) {}

    /// Record `n` fires of token `index` (the grammar's token index).
    fn token_fire(&self, _index: u32, _n: u64) {}

    /// Record one observation of `value` into the named histogram.
    fn observe(&self, _hist: &'static str, _value: u64) {}

    /// Record that the named span took `nanos` wall-clock nanoseconds.
    fn time(&self, _span: &'static str, _nanos: u64) {}

    /// Append a structured event to the trace buffer.
    fn trace(&self, _event: TraceEvent) {}

    /// Whether per-event recording is worth the caller's effort.
    ///
    /// Hot paths may consult this once per buffer and skip building
    /// per-event updates entirely when it returns `false`.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Whether [`MetricsSink::trace`] events would actually be kept.
    ///
    /// [`crate::Metrics::trace`] consults this before running its build
    /// closure, so a sink that discards traces (a zero-capacity ring, a
    /// tee with no tracing children) never pays the event allocation.
    /// Calling `trace` directly still behaves as each sink documents.
    fn wants_trace(&self) -> bool {
        true
    }
}

/// A sink that accepts everything and records nothing.
///
/// Installing this instead of leaving [`crate::Metrics`] off exercises
/// the full instrumented call path (branch + virtual dispatch) — the
/// overhead bench compares exactly these two configurations.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl MetricsSink for NoopSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn wants_trace(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_names_are_unique_and_indexed() {
        let mut seen = std::collections::HashSet::new();
        for (i, s) in Stat::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i);
            assert!(seen.insert(s.name()));
        }
        assert_eq!(Stat::ALL.len(), Stat::COUNT);
    }

    #[test]
    fn noop_sink_accepts_everything() {
        let s = NoopSink;
        s.add(Stat::BytesIn, 10);
        s.token_fire(3, 1);
        s.observe("h", 42);
        s.time("span", 1000);
        s.trace(TraceEvent::new("kind"));
        assert!(!s.is_enabled());
    }
}
