//! Structured trace events and their JSON-lines encoding.

use crate::json;
use std::fmt;

/// A field value in a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U(u64),
    /// Signed integer.
    I(i64),
    /// Floating point.
    F(f64),
    /// String.
    S(String),
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::U(v) => out.push_str(&v.to_string()),
            Value::I(v) => out.push_str(&v.to_string()),
            Value::F(v) => json::push_f64(out, *v),
            Value::S(v) => json::push_str(out, v),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::S(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::S(v)
    }
}

/// One structured event: a kind tag plus ordered key/value fields.
///
/// Events are cheap to build (`&'static str` keys, no map) and encode
/// to one JSON object per line via [`TraceEvent::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event kind, e.g. `"token_fire"`, `"resync"`, `"route"`.
    pub kind: &'static str,
    /// Ordered fields; duplicate keys are kept as-is.
    pub fields: Vec<(&'static str, Value)>,
}

impl TraceEvent {
    /// Start an event of the given kind.
    pub fn new(kind: &'static str) -> TraceEvent {
        TraceEvent { kind, fields: Vec::new() }
    }

    /// Append a field (builder style).
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> TraceEvent {
        self.fields.push((key, value.into()));
        self
    }

    /// Encode as a single-line JSON object: `{"kind":...,...fields}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + 16 * self.fields.len());
        out.push_str("{\"kind\":");
        json::push_str(&mut out, self.kind);
        for (k, v) in &self.fields {
            out.push(',');
            json::push_str(&mut out, k);
            out.push(':');
            v.write_json(&mut out);
        }
        out.push('}');
        out
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// Encode a slice of events as JSON lines (one object per line, no
/// trailing newline after the last).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&e.to_json());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_shape() {
        let e = TraceEvent::new("token_fire")
            .field("token", 3u32)
            .field("start", 10u64)
            .field("end", 14u64)
            .field("name", "methodName");
        assert_eq!(
            e.to_json(),
            "{\"kind\":\"token_fire\",\"token\":3,\"start\":10,\"end\":14,\"name\":\"methodName\"}"
        );
    }

    #[test]
    fn value_escaping_and_floats() {
        let e = TraceEvent::new("x").field("s", "a\"b\\c\nd").field("f", 1.5f64).field("i", -2i64);
        let json = e.to_json();
        assert!(json.contains("\"a\\\"b\\\\c\\nd\""));
        assert!(json.contains("\"f\":1.5"));
        assert!(json.contains("\"i\":-2"));
    }

    #[test]
    fn jsonl_lines() {
        let events = vec![TraceEvent::new("a"), TraceEvent::new("b")];
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
