//! The shared sink registry: one place where every instrumented
//! component (engine, router, worker) registers its [`StatsSink`] so a
//! live exporter can produce merged, point-in-time views of the whole
//! process while the hot paths keep recording.
//!
//! Registration is cheap and happens once per component; snapshotting
//! walks the registered sinks' lock-free counters, so it can run on an
//! exporter thread at any moment without pausing an engine mid-stream.

use crate::json;
use crate::stats::{StatsSink, StatsSnapshot};
use std::sync::{Arc, Mutex};

/// A registry of named [`StatsSink`]s.
///
/// Names identify the component ("engine", "router", "worker-3"); a
/// re-registration under an existing name replaces the previous sink
/// (the idiom for a restarted worker). Clone the `Arc<SharedRegistry>`
/// freely — all clones see the same sinks.
#[derive(Debug, Default)]
pub struct SharedRegistry {
    sinks: Mutex<Vec<(String, Arc<StatsSink>)>>,
}

impl SharedRegistry {
    /// An empty registry.
    pub fn new() -> SharedRegistry {
        SharedRegistry::default()
    }

    /// Register (or replace) the sink recorded under `name`.
    pub fn register(&self, name: impl Into<String>, sink: Arc<StatsSink>) {
        let name = name.into();
        let mut sinks = self.sinks.lock().unwrap();
        if let Some((_, slot)) = sinks.iter_mut().find(|(n, _)| *n == name) {
            *slot = sink;
        } else {
            sinks.push((name, sink));
        }
    }

    /// The sink registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<Arc<StatsSink>> {
        self.sinks.lock().unwrap().iter().find(|(n, _)| n == name).map(|(_, s)| Arc::clone(s))
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.sinks.lock().unwrap().iter().map(|(n, _)| n.clone()).collect()
    }

    /// Number of registered sinks.
    pub fn len(&self) -> usize {
        self.sinks.lock().unwrap().len()
    }

    /// Whether no sink is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time snapshot of every registered sink plus their
    /// merged view. Engines may keep recording while this runs; each
    /// per-sink snapshot is consistent-enough (relaxed atomic loads),
    /// and the merged view is the fold of exactly those snapshots.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let parts: Vec<(String, StatsSnapshot)> =
            self.sinks.lock().unwrap().iter().map(|(n, s)| (n.clone(), s.snapshot())).collect();
        let mut merged = StatsSnapshot::empty();
        for (_, snap) in &parts {
            merged.merge(snap);
        }
        RegistrySnapshot { parts, merged }
    }
}

/// Plain-data view of a whole [`SharedRegistry`] at one instant.
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// `(name, snapshot)` per registered sink, in registration order.
    pub parts: Vec<(String, StatsSnapshot)>,
    /// The fold of all parts (see [`StatsSnapshot::merge`]).
    pub merged: StatsSnapshot,
}

impl RegistrySnapshot {
    /// The change since an `earlier` registry snapshot: parts diff by
    /// name (a part with no earlier counterpart passes through whole),
    /// and the merged view diffs against the earlier merged view.
    pub fn diff(&self, earlier: &RegistrySnapshot) -> RegistrySnapshot {
        let parts = self
            .parts
            .iter()
            .map(|(name, snap)| {
                let d = match earlier.parts.iter().find(|(n, _)| n == name) {
                    Some((_, e)) => snap.diff(e),
                    None => snap.clone(),
                };
                (name.clone(), d)
            })
            .collect();
        RegistrySnapshot { parts, merged: self.merged.diff(&earlier.merged) }
    }

    /// Encode as one JSON object:
    /// `{"merged":{...},"sinks":{"name":{...},...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"merged\":");
        out.push_str(&self.merged.to_json());
        out.push_str(",\"sinks\":{");
        for (i, (name, snap)) in self.parts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, name);
            out.push(':');
            out.push_str(&snap.to_json());
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{MetricsSink, Stat};

    #[test]
    fn merged_snapshot_folds_all_sinks() {
        let reg = SharedRegistry::new();
        let engine = Arc::new(StatsSink::with_tokens(2));
        let router = Arc::new(StatsSink::new());
        reg.register("engine", Arc::clone(&engine));
        reg.register("router", Arc::clone(&router));
        engine.add(Stat::BytesIn, 100);
        engine.token_fire(1, 4);
        router.add(Stat::RouteBank, 3);
        router.observe("route_latency_bytes", 32);

        let snap = reg.snapshot();
        assert_eq!(snap.parts.len(), 2);
        assert_eq!(snap.merged.counter(Stat::BytesIn), 100);
        assert_eq!(snap.merged.counter(Stat::RouteBank), 3);
        assert_eq!(snap.merged.counter(Stat::EventsOut), 4);
        assert_eq!(snap.merged.token_fires, vec![0, 4]);
        assert_eq!(snap.merged.histogram("route_latency_bytes").unwrap().count, 1);

        let json = snap.to_json();
        assert!(json.starts_with("{\"merged\":"));
        assert!(json.contains("\"engine\":{"));
        assert!(json.contains("\"router\":{"));
    }

    #[test]
    fn snapshot_while_recording_is_consistent_enough() {
        let reg = Arc::new(SharedRegistry::new());
        let sink = Arc::new(StatsSink::new());
        reg.register("engine", Arc::clone(&sink));
        let writer = {
            let sink = Arc::clone(&sink);
            std::thread::spawn(move || {
                for _ in 0..20_000 {
                    sink.add(Stat::BytesIn, 1);
                }
            })
        };
        // Mid-stream snapshots must be monotone (counters only grow).
        let mut last = 0;
        for _ in 0..50 {
            let v = reg.snapshot().merged.counter(Stat::BytesIn);
            assert!(v >= last, "counter went backwards: {v} < {last}");
            last = v;
        }
        writer.join().unwrap();
        assert_eq!(reg.snapshot().merged.counter(Stat::BytesIn), 20_000);
    }

    #[test]
    fn reregistration_replaces_and_diff_rates() {
        let reg = SharedRegistry::new();
        let s1 = Arc::new(StatsSink::new());
        reg.register("w", Arc::clone(&s1));
        s1.add(Stat::BytesIn, 10);
        let t0 = reg.snapshot();
        s1.add(Stat::BytesIn, 40);
        let t1 = reg.snapshot();
        let d = t1.diff(&t0);
        assert_eq!(d.merged.counter(Stat::BytesIn), 40);
        assert_eq!(d.parts[0].1.counter(Stat::BytesIn), 40);

        // Replacement under the same name: the registry keeps one sink.
        let s2 = Arc::new(StatsSink::new());
        reg.register("w", Arc::clone(&s2));
        assert_eq!(reg.len(), 1);
        s2.add(Stat::BytesIn, 5);
        // The restarted worker's counter restarted too; diff saturates
        // instead of wrapping.
        let t2 = reg.snapshot();
        assert_eq!(t2.diff(&t1).merged.counter(Stat::BytesIn), 0);
        assert_eq!(reg.get("w").unwrap().get(Stat::BytesIn), 5);
        assert!(reg.get("missing").is_none());
        assert_eq!(reg.names(), vec!["w".to_string()]);
        assert!(!reg.is_empty());
    }

    #[test]
    fn empty_sink_merge_leaves_histograms_intact() {
        // A freshly-registered sink with no observations must be a
        // no-op in the merged histogram view, not a zeroing fold.
        let reg = SharedRegistry::new();
        let busy = Arc::new(StatsSink::new());
        reg.register("busy", Arc::clone(&busy));
        busy.observe("route_latency_bytes", 100);
        busy.observe("route_latency_bytes", 900);
        reg.register("idle", Arc::new(StatsSink::new()));

        let merged = reg.snapshot().merged;
        let h = merged.histogram("route_latency_bytes").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1000);
        assert_eq!(h.max, 900);
        // Merge symmetry: fold the busy part into an empty snapshot by
        // hand and compare against the registry's fold.
        let snap = reg.snapshot();
        let mut by_hand = crate::StatsSnapshot::empty();
        for (_, part) in &snap.parts {
            by_hand.merge(part);
        }
        assert_eq!(by_hand.histogram("route_latency_bytes"), Some(h));
    }

    #[test]
    fn single_sample_quantiles_report_that_sample() {
        let reg = SharedRegistry::new();
        let sink = Arc::new(StatsSink::new());
        reg.register("engine", Arc::clone(&sink));
        sink.observe("decision_latency_ns", 700);
        let h = reg.snapshot().merged.histogram("decision_latency_ns").unwrap().clone();
        assert_eq!(h.count, 1);
        // Every quantile of a one-sample distribution lands in that
        // sample's bucket: within the power-of-two bracket around 700.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!((512.0..=1024.0).contains(&v), "q={q} gave {v}");
        }
    }

    #[test]
    fn max_and_sum_survive_multi_sink_merges() {
        let reg = SharedRegistry::new();
        let a = Arc::new(StatsSink::new());
        let b = Arc::new(StatsSink::new());
        let c = Arc::new(StatsSink::new());
        reg.register("a", Arc::clone(&a));
        reg.register("b", Arc::clone(&b));
        reg.register("c", Arc::clone(&c));
        a.observe("chunk_bytes", 10);
        a.observe("chunk_bytes", 20);
        b.observe("chunk_bytes", 5000);
        c.observe("chunk_bytes", 3);

        let h = reg.snapshot().merged.histogram("chunk_bytes").unwrap().clone();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 10 + 20 + 5000 + 3);
        // max is the max over sinks, not the last-merged sink's max.
        assert_eq!(h.max, 5000);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }

    #[test]
    fn new_part_passes_through_diff() {
        let reg = SharedRegistry::new();
        let a = Arc::new(StatsSink::new());
        reg.register("a", Arc::clone(&a));
        a.add(Stat::BytesIn, 1);
        let t0 = reg.snapshot();
        let b = Arc::new(StatsSink::new());
        reg.register("b", Arc::clone(&b));
        b.add(Stat::BytesIn, 7);
        let t1 = reg.snapshot();
        let d = t1.diff(&t0);
        let part_b = d.parts.iter().find(|(n, _)| n == "b").unwrap();
        assert_eq!(part_b.1.counter(Stat::BytesIn), 7);
    }
}
