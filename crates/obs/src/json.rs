//! Minimal hand-rolled JSON encoding helpers.
//!
//! The workspace keeps a zero-dependency budget, so the handful of
//! places that emit JSON (trace events, stats snapshots, compile
//! reports, bench rows) share these primitives instead of a JSON crate.

/// Append a JSON string literal (with quotes) to `out`, escaping as
/// required by RFC 8259.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite JSON number for `v`; non-finite values (which JSON
/// cannot represent) are emitted as `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` round-trips f64 (always includes a decimal point or
        // exponent, so the value re-parses as a float).
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Encode `(key, value)` pairs as a flat JSON object of numbers.
pub fn object_u64(pairs: &[(&str, u64)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(&mut out, k);
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push('}');
    out
}

/// A parsed JSON value.
///
/// The decoding half of the crate's zero-dependency JSON story: the
/// live-telemetry clients (`cfgtag top`, the bench regression differ)
/// consume `/report.json` and `bench_results/*.json` rows through this
/// instead of a JSON crate. Numbers are held as `f64` — integral
/// counters survive exactly up to 2^53, far beyond any rate window.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order preserved, duplicate keys kept as-is.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member of an object by key (`None` for non-objects too).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9.007199254740992e15 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not needed by any of
                            // our own encoders; map them to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let s = plain_prefix(&self.bytes[self.pos..]);
                    out.push_str(s);
                    self.pos += s.len();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Longest prefix of `bytes` containing no quote or backslash, as &str.
fn plain_prefix(bytes: &[u8]) -> &str {
    let end = bytes.iter().position(|&b| b == b'"' || b == b'\\').unwrap_or(bytes.len());
    // The full slice came from a &str and the cut points are ASCII, so
    // the prefix stays valid UTF-8.
    std::str::from_utf8(&bytes[..end]).unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_escapes() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn float_forms() {
        let mut out = String::new();
        push_f64(&mut out, 2.0);
        out.push(' ');
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "2.0 null");
    }

    #[test]
    fn u64_object() {
        assert_eq!(object_u64(&[("a", 1), ("b", 2)]), "{\"a\":1,\"b\":2}");
        assert_eq!(object_u64(&[]), "{}");
    }

    #[test]
    fn parse_round_trips_own_encoders() {
        let mut encoded = String::from("{\"s\":");
        push_str(&mut encoded, "a\"b\\c\nd\te\u{1}");
        encoded.push_str(",\"f\":");
        push_f64(&mut encoded, 1.5);
        encoded.push_str(",\"nan\":");
        push_f64(&mut encoded, f64::NAN);
        encoded.push_str(",\"o\":");
        encoded.push_str(&object_u64(&[("a", 1), ("b", 2)]));
        encoded.push_str(",\"arr\":[1,-2,3.5,true,false,null]}");
        let v = Json::parse(&encoded).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd\te\u{1}"));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("nan"), Some(&Json::Null));
        assert_eq!(v.get("o").unwrap().get("b").unwrap().as_u64(), Some(2));
        let arr = v.get("arr").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 6);
        assert_eq!(arr[1].as_f64(), Some(-2.0));
        assert_eq!(arr[3].as_bool(), Some(true));
        assert_eq!(arr[5], Json::Null);
    }

    #[test]
    fn parse_structure_and_whitespace() {
        let v = Json::parse(" { \"a\" : [ { } , [ ] ] , \"b\" : \"x\" } \n").unwrap();
        assert_eq!(v.as_object().unwrap().len(), 2);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        // Numbers: exponents and integral extraction.
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_unicode_escapes_and_raw_utf8() {
        let v = Json::parse("\"caf\u{e9} \\u00e9 \\uD800\"").unwrap();
        assert_eq!(v.as_str(), Some("caf\u{e9} \u{e9} \u{fffd}"));
    }
}
