//! Minimal hand-rolled JSON encoding helpers.
//!
//! The workspace keeps a zero-dependency budget, so the handful of
//! places that emit JSON (trace events, stats snapshots, compile
//! reports, bench rows) share these primitives instead of a JSON crate.

/// Append a JSON string literal (with quotes) to `out`, escaping as
/// required by RFC 8259.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite JSON number for `v`; non-finite values (which JSON
/// cannot represent) are emitted as `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` round-trips f64 (always includes a decimal point or
        // exponent, so the value re-parses as a float).
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Encode `(key, value)` pairs as a flat JSON object of numbers.
pub fn object_u64(pairs: &[(&str, u64)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(&mut out, k);
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_escapes() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn float_forms() {
        let mut out = String::new();
        push_f64(&mut out, 2.0);
        out.push(' ');
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "2.0 null");
    }

    #[test]
    fn u64_object() {
        assert_eq!(object_u64(&[("a", 1), ("b", 2)]), "{\"a\":1,\"b\":2}");
        assert_eq!(object_u64(&[]), "{}");
    }
}
