//! A lightweight in-process sampling profiler for the serving path.
//!
//! Worker threads publish their *current stage* — reusing the span
//! pipeline's [`Stage`] vocabulary, plus an explicit idle state — into
//! a per-thread [`WorkerSlot`]: one relaxed atomic store per stage
//! change, nothing else on the hot path. A sampler thread reads every
//! slot at a configured frequency and accumulates per-(stage, label)
//! hit counts, where the label names the worker's engine kind. The
//! result renders as folded-stack lines (`stage;engine_kind count`),
//! the format flamegraph tooling consumes directly — `/profile.folded`
//! piped into `flamegraph.pl` is a picture of where shard worker time
//! goes.
//!
//! Workers register their slot in a thread-local so code deeper in the
//! handler (the server's parse / engine-feed / ack-write boundaries)
//! can refine the published stage through the free functions
//! [`enter`] / [`idle`] without any signature plumbing. On a thread
//! that never registered — every pool without a profiler attached —
//! those functions are a thread-local load and a `None` branch.

use crate::span::Stage;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Slot value meaning "not working on anything".
const IDLE: usize = 0;

/// Stage slots per counter row: every [`Stage`] plus idle.
const LANES: usize = Stage::COUNT + 1;

/// One worker thread's published state: which stage it is in right
/// now, and the label (engine kind) its samples fold under.
#[derive(Debug)]
pub struct WorkerSlot {
    current: AtomicUsize,
    label: String,
}

impl WorkerSlot {
    /// Publish the stage the worker is entering.
    pub fn enter(&self, stage: Stage) {
        self.current.store(1 + stage as usize, Ordering::Relaxed);
    }

    /// Publish that the worker is idle (waiting for work).
    pub fn idle(&self) {
        self.current.store(IDLE, Ordering::Relaxed);
    }

    /// The label this slot's samples are attributed to.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The currently published stage, `None` when idle.
    pub fn current(&self) -> Option<Stage> {
        match self.current.load(Ordering::Relaxed) {
            IDLE => None,
            lane => Stage::ALL.get(lane - 1).copied(),
        }
    }
}

thread_local! {
    static CURRENT_SLOT: RefCell<Option<Arc<WorkerSlot>>> = const { RefCell::new(None) };
}

/// Register `slot` as this thread's published-stage slot; [`enter`] and
/// [`idle`] target it from anywhere on the thread afterwards.
pub fn set_current_slot(slot: Arc<WorkerSlot>) {
    CURRENT_SLOT.with(|s| *s.borrow_mut() = Some(slot));
}

/// Publish a stage on this thread's registered slot. A no-op on
/// threads that never registered one.
pub fn enter(stage: Stage) {
    CURRENT_SLOT.with(|s| {
        if let Some(slot) = s.borrow().as_ref() {
            slot.enter(stage);
        }
    });
}

/// Publish idle on this thread's registered slot (no-op unregistered).
pub fn idle() {
    CURRENT_SLOT.with(|s| {
        if let Some(slot) = s.borrow().as_ref() {
            slot.idle();
        }
    });
}

/// Per-slot sample counts: one lane per stage plus idle.
#[derive(Debug)]
struct SlotCounts {
    slot: Arc<WorkerSlot>,
    lanes: [AtomicU64; LANES],
}

/// The sampler: holds every registered [`WorkerSlot`] and the hit
/// counts accumulated by [`SamplingProfiler::sample_once`].
#[derive(Debug, Default)]
pub struct SamplingProfiler {
    slots: Mutex<Vec<SlotCounts>>,
    samples: AtomicU64,
}

impl SamplingProfiler {
    /// An empty profiler; workers join via
    /// [`SamplingProfiler::register`].
    pub fn new() -> SamplingProfiler {
        SamplingProfiler::default()
    }

    /// Mint a slot for one worker thread, folded under `label`. The
    /// worker keeps the `Arc` and publishes into it; the profiler
    /// samples it.
    pub fn register(&self, label: &str) -> Arc<WorkerSlot> {
        let slot =
            Arc::new(WorkerSlot { current: AtomicUsize::new(IDLE), label: label.to_owned() });
        self.slots.lock().expect("profiler slots lock").push(SlotCounts {
            slot: Arc::clone(&slot),
            lanes: std::array::from_fn(|_| AtomicU64::new(0)),
        });
        slot
    }

    /// Registered worker slots.
    pub fn workers(&self) -> usize {
        self.slots.lock().expect("profiler slots lock").len()
    }

    /// Sampling ticks taken so far.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Read every slot once and bump the lane each worker is currently
    /// in — one sampling tick.
    pub fn sample_once(&self) {
        let slots = self.slots.lock().expect("profiler slots lock");
        for entry in slots.iter() {
            let lane = entry.slot.current.load(Ordering::Relaxed).min(LANES - 1);
            entry.lanes[lane].fetch_add(1, Ordering::Relaxed);
        }
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Folded-stack output: one `stage;label count` line per non-zero
    /// (stage, label) pair, aggregated across workers sharing a label,
    /// in stable (stage pipeline, label) order. Empty when nothing has
    /// been sampled.
    pub fn folded(&self) -> String {
        let slots = self.slots.lock().expect("profiler slots lock");
        let mut labels: Vec<&str> = slots.iter().map(|e| e.slot.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        let mut out = String::new();
        for lane in 0..LANES {
            let stage_name = if lane == IDLE { "idle" } else { Stage::ALL[lane - 1].name() };
            for label in &labels {
                let count: u64 = slots
                    .iter()
                    .filter(|e| e.slot.label == *label)
                    .map(|e| e.lanes[lane].load(Ordering::Relaxed))
                    .sum();
                if count > 0 {
                    out.push_str(stage_name);
                    out.push(';');
                    out.push_str(label);
                    out.push(' ');
                    out.push_str(&count.to_string());
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Spawn the sampler thread, ticking `hz` times per second
    /// (clamped to `1..=1000`) until the handle is stopped or dropped.
    pub fn start(self: &Arc<Self>, hz: u32) -> ProfilerHandle {
        let profiler = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let period = Duration::from_nanos(1_000_000_000 / u64::from(hz.clamp(1, 1000)));
        let handle = std::thread::Builder::new()
            .name("cfgtag-profiler".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    profiler.sample_once();
                }
            })
            .expect("spawn sampling profiler");
        ProfilerHandle { stop, handle: Some(handle) }
    }
}

/// A running profiler sampler thread; stop it explicitly or by drop.
#[derive(Debug)]
pub struct ProfilerHandle {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ProfilerHandle {
    /// Stop sampling and join the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            let _ = handle.join();
        }
    }
}

impl Drop for ProfilerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_publish_and_samples_accumulate() {
        let p = SamplingProfiler::new();
        let slot = p.register("bit");
        assert_eq!(p.workers(), 1);
        assert_eq!(slot.current(), None, "fresh slots are idle");
        p.sample_once();
        slot.enter(Stage::Engine);
        assert_eq!(slot.current(), Some(Stage::Engine));
        p.sample_once();
        p.sample_once();
        slot.idle();
        p.sample_once();
        assert_eq!(p.samples(), 4);
        let folded = p.folded();
        assert!(folded.contains("idle;bit 2\n"), "{folded}");
        assert!(folded.contains("engine;bit 2\n"), "{folded}");
        assert!(!folded.contains("parse"), "unvisited stages are elided: {folded}");
    }

    #[test]
    fn folded_aggregates_same_label_and_orders_stages() {
        let p = SamplingProfiler::new();
        let a = p.register("bit");
        let b = p.register("bit");
        let c = p.register("scalar");
        a.enter(Stage::Parse);
        b.enter(Stage::Parse);
        c.enter(Stage::AckWrite);
        p.sample_once();
        a.enter(Stage::AckWrite);
        p.sample_once();
        let folded = p.folded();
        let lines: Vec<&str> = folded.lines().collect();
        // Two bit workers parsing in tick 1, one in tick 2 → 3 total.
        assert!(lines.contains(&"parse;bit 3"), "{folded}");
        assert!(lines.contains(&"ack_write;bit 1"), "{folded}");
        assert!(lines.contains(&"ack_write;scalar 2"), "{folded}");
        // Stage pipeline order: parse lines precede ack_write lines.
        let parse_at = lines.iter().position(|l| l.starts_with("parse;")).unwrap();
        let ack_at = lines.iter().position(|l| l.starts_with("ack_write;")).unwrap();
        assert!(parse_at < ack_at, "{folded}");
    }

    #[test]
    fn thread_local_enter_is_noop_until_registered() {
        // No slot registered on this thread: must not panic, must not
        // record anywhere.
        idle();
        enter(Stage::Parse);
        let p = SamplingProfiler::new();
        let slot = p.register("bit");
        set_current_slot(Arc::clone(&slot));
        enter(Stage::AckWrite);
        assert_eq!(slot.current(), Some(Stage::AckWrite));
        idle();
        assert_eq!(slot.current(), None);
    }

    #[test]
    fn worker_threads_publish_through_the_thread_local() {
        let p = Arc::new(SamplingProfiler::new());
        let slot = p.register("bit");
        let worker_slot = Arc::clone(&slot);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::spawn(move || {
            set_current_slot(worker_slot);
            enter(Stage::Engine);
            // Hold the stage until the main thread has sampled it.
            rx.recv().unwrap();
            idle();
        });
        for _ in 0..200 {
            if slot.current() == Some(Stage::Engine) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        p.sample_once();
        tx.send(()).unwrap();
        worker.join().unwrap();
        assert!(p.folded().contains("engine;bit 1"), "{}", p.folded());
    }

    #[test]
    fn sampler_thread_ticks_and_stops() {
        let p = Arc::new(SamplingProfiler::new());
        let slot = p.register("bit");
        slot.enter(Stage::QueueWait);
        let handle = p.start(500);
        for _ in 0..500 {
            if p.samples() >= 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        handle.stop();
        let after = p.samples();
        assert!(after >= 3, "sampler ticked: {after}");
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(p.samples(), after, "stopped sampler stays stopped");
        assert!(p.folded().contains("queue_wait;bit"), "{}", p.folded());
    }

    #[test]
    fn empty_profiler_folds_to_nothing() {
        let p = SamplingProfiler::new();
        assert_eq!(p.folded(), "");
        p.sample_once();
        assert_eq!(p.folded(), "", "no slots, nothing to attribute");
    }
}
