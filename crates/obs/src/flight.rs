//! The flight recorder: a fixed-size ring of the most recent trace
//! events and span timings, kept cheaply at all times and dumped only
//! when something goes wrong (a stream entering the dead state, an
//! exit-code-3 run). This captures the events *leading up to* a failure
//! without paying for always-on trace persistence.

use crate::json;
use crate::sink::MetricsSink;
use crate::trace::{TraceEvent, Value};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default ring capacity — comfortably above the 256 events a
/// post-mortem needs to reconstruct the approach to a dead state.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// A bounded in-memory recorder of recent trace events and span
/// timings.
///
/// Implements [`MetricsSink`], so it can be attached directly or fanned
/// into alongside a [`crate::StatsSink`] via [`crate::TeeSink`].
/// Counter and histogram updates are ignored (those live in the stats
/// sink); trace events and span timings are stamped with a global
/// sequence number and kept in one ring, oldest evicted first.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<(u64, TraceEvent)>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding up to `capacity` entries (0 disables it).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder { capacity, seq: AtomicU64::new(0), ring: Mutex::new(VecDeque::new()) }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Whether nothing has been recorded (or capacity is 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries ever recorded (including evicted ones) — the
    /// sequence number the next entry will carry.
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    fn push(&self, event: TraceEvent) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap();
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back((seq, event));
        seq
    }

    /// Record an event directly (outside the [`MetricsSink`] path) and
    /// return the sequence number it was stamped with. The trigger
    /// engine uses this to correlate a fired condition with its place
    /// in the ring.
    pub fn record(&self, event: TraceEvent) -> u64 {
        self.push(event)
    }

    /// Copy out the ring, oldest first, each entry with its sequence
    /// number.
    pub fn events(&self) -> Vec<(u64, TraceEvent)> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Dump the ring as JSON lines — one `{"seq":N,...event}` object
    /// per line, oldest first, trailing newline after the last (ready
    /// to write to a `--flight-out` file).
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for (seq, event) in self.events() {
            push_seq_line(&mut out, seq, &event);
        }
        out
    }
}

/// Append one `{"seq":N,...event}\n` line — the shared line shape for
/// flight dumps and trigger captures.
pub(crate) fn push_seq_line(out: &mut String, seq: u64, event: &TraceEvent) {
    out.push_str("{\"seq\":");
    out.push_str(&seq.to_string());
    out.push_str(",\"kind\":");
    json::push_str(out, event.kind);
    for (k, v) in &event.fields {
        out.push(',');
        json::push_str(out, k);
        out.push(':');
        match v {
            Value::U(x) => out.push_str(&x.to_string()),
            Value::I(x) => out.push_str(&x.to_string()),
            Value::F(x) => json::push_f64(out, *x),
            Value::S(x) => json::push_str(out, x),
        }
    }
    out.push_str("}\n");
}

impl MetricsSink for FlightRecorder {
    fn time(&self, span: &'static str, nanos: u64) {
        self.push(TraceEvent::new("span").field("name", span).field("nanos", nanos));
    }

    fn trace(&self, event: TraceEvent) {
        self.push(event);
    }
}

/// A sink that forwards every call to each of its children — the way to
/// attach a [`FlightRecorder`] *and* a [`crate::StatsSink`] to the same
/// engine through one [`crate::Metrics`] handle.
pub struct TeeSink {
    sinks: Vec<std::sync::Arc<dyn MetricsSink>>,
}

impl std::fmt::Debug for TeeSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeSink").field("sinks", &self.sinks.len()).finish()
    }
}

impl TeeSink {
    /// A tee over the given children, called in order.
    pub fn new(sinks: Vec<std::sync::Arc<dyn MetricsSink>>) -> TeeSink {
        TeeSink { sinks }
    }
}

impl MetricsSink for TeeSink {
    fn add(&self, stat: crate::sink::Stat, n: u64) {
        for s in &self.sinks {
            s.add(stat, n);
        }
    }

    fn token_fire(&self, index: u32, n: u64) {
        for s in &self.sinks {
            s.token_fire(index, n);
        }
    }

    fn observe(&self, hist: &'static str, value: u64) {
        for s in &self.sinks {
            s.observe(hist, value);
        }
    }

    fn time(&self, span: &'static str, nanos: u64) {
        for s in &self.sinks {
            s.time(span, nanos);
        }
    }

    fn trace(&self, event: TraceEvent) {
        match self.sinks.len() {
            0 => {}
            1 => self.sinks[0].trace(event),
            _ => {
                for s in &self.sinks[..self.sinks.len() - 1] {
                    s.trace(event.clone());
                }
                self.sinks[self.sinks.len() - 1].trace(event);
            }
        }
    }

    fn is_enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.is_enabled())
    }

    fn wants_trace(&self) -> bool {
        self.sinks.iter().any(|s| s.wants_trace())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{NoopSink, Stat};
    use crate::stats::StatsSink;
    use std::sync::Arc;

    #[test]
    fn ring_keeps_the_most_recent_entries() {
        let fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.trace(TraceEvent::new("e").field("i", i));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.recorded(), 5);
        let events = fr.events();
        assert_eq!(events[0].0, 2, "oldest surviving entry is seq 2");
        assert_eq!(events[2].0, 4);
    }

    #[test]
    fn dump_is_jsonl_with_sequence_numbers() {
        let fr = FlightRecorder::new(8);
        fr.trace(TraceEvent::new("token_fire").field("token", 3u32));
        fr.time("feed", 1234);
        let dump = fr.dump_jsonl();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.starts_with("{\"seq\":0,\"kind\":\"token_fire\",\"token\":3}"));
        assert!(dump.contains("{\"seq\":1,\"kind\":\"span\",\"name\":\"feed\",\"nanos\":1234}"));
        assert!(dump.ends_with('\n'));
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let fr = FlightRecorder::new(0);
        fr.trace(TraceEvent::new("e"));
        assert!(fr.is_empty());
        assert_eq!(fr.recorded(), 0);
        assert_eq!(fr.dump_jsonl(), "");
    }

    #[test]
    fn default_capacity_covers_a_256_event_post_mortem() {
        let fr = FlightRecorder::default();
        assert!(fr.capacity() >= 256);
        for i in 0..2000u64 {
            fr.trace(TraceEvent::new("e").field("i", i));
        }
        assert_eq!(fr.len(), DEFAULT_FLIGHT_CAPACITY);
        assert!(fr.dump_jsonl().lines().count() >= 256);
    }

    #[test]
    fn tee_forwards_to_all_children() {
        let stats = Arc::new(StatsSink::with_tokens(2));
        let flight = Arc::new(FlightRecorder::new(8));
        let tee = TeeSink::new(vec![Arc::clone(&stats) as _, Arc::clone(&flight) as _]);
        tee.add(Stat::BytesIn, 9);
        tee.token_fire(1, 2);
        tee.observe("h", 5);
        tee.time("span", 7);
        tee.trace(TraceEvent::new("e"));
        assert_eq!(stats.get(Stat::BytesIn), 9);
        assert_eq!(stats.token_fires(1), 2);
        assert_eq!(stats.trace_events().len(), 1);
        // The flight recorder keeps the span and the trace event only.
        assert_eq!(flight.len(), 2);
        assert!(tee.is_enabled());
        assert!(!TeeSink::new(vec![Arc::new(NoopSink) as _]).is_enabled());
        assert!(!TeeSink::new(Vec::new()).is_enabled());
    }
}
