//! cfg-obs: observability layer for the CFG token tagger workspace.
//!
//! The design goal is *zero overhead when off*: every instrumented
//! component holds a [`Metrics`] handle, which is a newtype over
//! `Option<Arc<dyn MetricsSink>>`. When no sink is installed the handle
//! is `None` and every recording method is a single branch on a local
//! `Option` — no allocation, no atomics, no virtual dispatch. Hot loops
//! that would otherwise pay even that branch per byte check
//! [`Metrics::enabled`] once per buffer and batch their updates.
//!
//! Two sinks ship with the crate:
//!
//! * [`NoopSink`] — accepts and discards everything. Useful to verify
//!   that the instrumented code path is behaviourally identical to the
//!   un-instrumented one (see the overhead bench in `cfg-bench`).
//! * [`StatsSink`] — lock-free counters (atomics), per-token fire
//!   counters, power-of-two-bucket histograms, stage timings, and a
//!   bounded trace ring buffer with a JSON-lines exporter.
//!
//! All JSON is hand-rolled ([`json`]); the crate has zero dependencies.

#![forbid(unsafe_code)]

mod histogram;
pub mod json;
mod metrics;
mod report;
mod sink;
mod stats;
mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use metrics::{Metrics, SpanGuard};
pub use report::{CompileReport, StageTiming};
pub use sink::{MetricsSink, NoopSink, Stat};
pub use stats::{StatsSink, StatsSnapshot};
pub use trace::{TraceEvent, Value};
