//! cfg-obs: observability layer for the CFG token tagger workspace.
//!
//! The design goal is *zero overhead when off*: every instrumented
//! component holds a [`Metrics`] handle, which is a newtype over
//! `Option<Arc<dyn MetricsSink>>`. When no sink is installed the handle
//! is `None` and every recording method is a single branch on a local
//! `Option` — no allocation, no atomics, no virtual dispatch. Hot loops
//! that would otherwise pay even that branch per byte check
//! [`Metrics::enabled`] once per buffer and batch their updates.
//!
//! Four sinks ship with the crate:
//!
//! * [`NoopSink`] — accepts and discards everything. Useful to verify
//!   that the instrumented code path is behaviourally identical to the
//!   un-instrumented one (see the overhead bench in `cfg-bench`).
//! * [`StatsSink`] — lock-free counters (atomics), per-token fire
//!   counters, power-of-two-bucket histograms, stage timings, and a
//!   bounded trace ring buffer with a JSON-lines exporter.
//! * [`FlightRecorder`] — a fixed-size ring of recent trace events and
//!   span timings, dumped post-mortem when a stream dies.
//! * [`TeeSink`] — fans one [`Metrics`] handle out to several sinks
//!   (typically a [`StatsSink`] plus a [`FlightRecorder`]).
//!
//! For *live* observability, [`SharedRegistry`] names the process's
//! [`StatsSink`]s and produces merged point-in-time [`RegistrySnapshot`]s
//! (with histogram quantiles and snapshot diffing for rate computation)
//! that the `cfg-obs-http` exporter serves over HTTP while engines keep
//! streaming.
//!
//! Below the engine counters sits the *circuit* view: a [`ProbeBank`]
//! holds one dense atomic counter per synthesized circuit element
//! (decoder, tokenizer stage, FOLLOW edge), addressed by the stable
//! probe ids minted in `circuit.json`, and a [`TriggerHub`] arms
//! ILA-style captures ([`TriggerCondition`]) that freeze a pre/post
//! window of trace events around a token fire, a FOLLOW-edge
//! traversal, or a dead stream.
//!
//! The *correctness* view rides the same rails: an [`AuditBank`] holds
//! the shadow-audit lane's counters (sessions sampled, fires confirmed
//! by the exact parser, per-token false positives, cross-engine
//! divergences) and a [`MismatchRing`] keeps flight-recorder evidence
//! for each divergence, both metrics-dark unless a server was asked to
//! audit.
//!
//! All JSON is hand-rolled, both directions ([`json`]); the crate has
//! zero dependencies.

#![forbid(unsafe_code)]

mod audit;
mod flight;
mod histogram;
pub mod json;
mod metrics;
mod probe;
pub mod profile;
mod registry;
mod report;
mod sink;
mod slo;
mod span;
mod stats;
mod timeseries;
mod trace;
mod trigger;

pub use audit::{AuditBank, AuditEvent, Mismatch, MismatchRing, DEFAULT_MISMATCH_CAPACITY};
pub use flight::{FlightRecorder, TeeSink, DEFAULT_FLIGHT_CAPACITY};
pub use histogram::{Histogram, HistogramSnapshot};
pub use metrics::{Metrics, SpanGuard};
pub use probe::ProbeBank;
pub use profile::{ProfilerHandle, SamplingProfiler, WorkerSlot};
pub use registry::{RegistrySnapshot, SharedRegistry};
pub use report::{CompileReport, StageTiming};
pub use sink::{MetricsSink, NoopSink, Stat};
pub use slo::{FineHistogram, FineSnapshot, QuantileSummary, SloSnapshot, SloTracker};
pub use span::{Span, SpanRecorder, Stage};
pub use stats::{StatsSink, StatsSnapshot};
pub use timeseries::{
    derive_gauges, SamplerHandle, ShardGauge, ShardLoadBank, ShardSample, TickSnapshot, TimeSeries,
};
pub use trace::{TraceEvent, Value};
pub use trigger::{Trigger, TriggerCondition, TriggerHub};
