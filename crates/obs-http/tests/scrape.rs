//! Integration test: a real exporter on an ephemeral port, scraped
//! over real sockets. Asserts the Prometheus text output is
//! well-formed (names, labels and values all parse) and that counters
//! are monotonic across two scrapes while a writer thread keeps
//! recording.

use cfg_obs::{MetricsSink, SharedRegistry, Stat, StatsSink};
use cfg_obs_http::{http_get, Exporter, ServiceState};
use std::collections::HashMap;
use std::sync::Arc;

/// Parse one Prometheus text-format body into `series -> value`,
/// asserting every line is well-formed on the way.
fn parse_prometheus(body: &str) -> HashMap<String, f64> {
    let mut series = HashMap::new();
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (id, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no value: {line:?}"));
        // Metric name: [a-zA-Z_:][a-zA-Z0-9_:]*, optionally followed by
        // a {label="value",...} block.
        let name_end = id.find('{').unwrap_or(id.len());
        let name = &id[..name_end];
        assert!(
            !name.is_empty()
                && name.chars().next().unwrap().is_ascii_alphabetic()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line:?}"
        );
        if name_end < id.len() {
            let labels = &id[name_end..];
            assert!(labels.starts_with('{') && labels.ends_with('}'), "bad labels in {line:?}");
            for pair in labels[1..labels.len() - 1].split(',') {
                let (k, v) = pair.split_once('=').unwrap_or_else(|| panic!("bad label {pair:?}"));
                assert!(k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'), "{line:?}");
                assert!(v.starts_with('"') && v.ends_with('"'), "unquoted label in {line:?}");
            }
        }
        let value: f64 = value.parse().unwrap_or_else(|e| panic!("bad value in {line:?}: {e}"));
        assert!(series.insert(id.to_string(), value).is_none(), "duplicate series {id:?}");
    }
    series
}

#[test]
fn exporter_serves_wellformed_monotonic_metrics() {
    let registry = Arc::new(SharedRegistry::new());
    let sink = Arc::new(StatsSink::with_tokens(4));
    registry.register("engine", Arc::clone(&sink));
    let state = Arc::new(ServiceState::new());
    state.set_ready(true);

    let exporter =
        Exporter::bind("127.0.0.1:0", Arc::clone(&registry), Arc::clone(&state)).unwrap();
    let addr = exporter.local_addr().to_string();

    // A writer hammering the sink while we scrape.
    let writer_sink = Arc::clone(&sink);
    let writer = std::thread::spawn(move || {
        for i in 0..50_000u64 {
            writer_sink.add(Stat::BytesIn, 3);
            writer_sink.token_fire((i % 4) as u32, 1);
            if i % 64 == 0 {
                writer_sink.observe("decision_latency_ns", 100 + i % 1000);
            }
        }
    });

    let first = parse_prometheus(&http_get(&addr, "/metrics").unwrap());
    writer.join().unwrap();
    let second = parse_prometheus(&http_get(&addr, "/metrics").unwrap());

    // Counters (every *_total series and histogram _bucket/_count/_sum)
    // must be monotonic between the two scrapes.
    let mut compared = 0;
    for (id, v1) in &first {
        let counter_like = id.starts_with("cfgtag_")
            && (id.contains("_total")
                || id.contains("_bucket")
                || id.contains("_count")
                || id.contains("_sum"));
        if !counter_like {
            continue;
        }
        if let Some(v2) = second.get(id) {
            assert!(v2 >= v1, "counter {id} went backwards: {v1} -> {v2}");
            compared += 1;
        }
    }
    assert!(compared >= Stat::COUNT, "too few counter series compared: {compared}");

    // The final scrape reflects all the traffic.
    assert_eq!(second.get("cfgtag_bytes_in_total{sink=\"engine\"}"), Some(&150_000.0));
    assert_eq!(second.get("cfgtag_ready"), Some(&1.0));
    assert!(second.contains_key("cfgtag_decision_latency_ns_quantile{quantile=\"0.99\"}"));

    // Health endpoints behave over the wire too.
    assert_eq!(http_get(&addr, "/healthz").unwrap(), "ok\n");
    assert_eq!(http_get(&addr, "/readyz").unwrap(), "ready\n");
    state.set_dead(true);
    assert!(http_get(&addr, "/readyz").unwrap().contains("dead"));

    // And /report.json stays valid JSON under load.
    let report = http_get(&addr, "/report.json").unwrap();
    let v = cfg_obs::json::Json::parse(&report).unwrap();
    assert_eq!(
        v.get("stats")
            .unwrap()
            .get("merged")
            .unwrap()
            .get("counters")
            .unwrap()
            .get("bytes_in")
            .unwrap()
            .as_u64(),
        Some(150_000)
    );

    exporter.stop();
    // A stopped exporter refuses connections (the port is released).
    assert!(http_get(&addr, "/healthz").is_err());
}
