//! # cfg-obs-http — the live telemetry exporter
//!
//! A dependency-free, blocking, single-threaded HTTP exporter over a
//! [`SharedRegistry`]: point a Prometheus scraper (or `curl`, or
//! `cfgtag top`) at a long-running tagger and watch it work. Endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition format: every
//!   [`Stat`] counter per registered sink, per-token fire counters,
//!   histograms with power-of-two `le` buckets plus p50/p90/p99
//!   quantile gauges, and service gauges (`cfgtag_ready`,
//!   `cfgtag_dead`, `cfgtag_sinks`).
//! * `GET /healthz` — liveness: `200 ok` whenever the exporter thread
//!   is serving.
//! * `GET /readyz` — readiness: `200 ready` once the tagger is
//!   compiled ([`ServiceState::set_ready`]) and the stream has not
//!   entered the dead state, `503` otherwise.
//! * `GET /report.json` — the merged [`RegistrySnapshot`] plus the
//!   service metadata (compile report, token names) as one JSON object.
//! * `GET /circuit.json` — the named topology of the synthesized
//!   circuit ([`ServiceState::set_circuit_json`]): decoders, tokenizer
//!   stages, FOLLOW enable edges, and the encoder, each carrying a
//!   stable probe id.
//! * `GET /probes.json` — live per-element activity from the attached
//!   [`cfg_obs::ProbeBank`]; probe order matches `/circuit.json` 1:1.
//! * `GET /trigger?cond=token:go&pre=32&post=32` — arm an ILA-style
//!   capture ([`cfg_obs::TriggerHub`]); conditions are `token:<name>`,
//!   `edge:<from>-><to>`, or `dead`.
//! * `GET /capture.jsonl` — the captured pre/post trace window as
//!   JSON lines once the trigger has fired (`503` while pending,
//!   `404` with no trigger armed; `?flush=1` force-completes a
//!   partial post window).
//! * `GET /slo.json` — the attached [`cfg_obs::SloTracker`] snapshot:
//!   end-to-end and per-stage latency quantiles (p50/p90/p99/p99.9)
//!   plus error-budget accounting against the latency objective.
//! * `GET /spans.jsonl` — recent retained frame spans (head-sampled
//!   plus always-on-slow) from the attached [`cfg_obs::SpanRecorder`],
//!   one JSON object per line with per-stage durations.
//! * `GET /shards.json` — current per-shard saturation gauges from the
//!   attached [`cfg_obs::TimeSeries`]: queue depth, utilization %,
//!   arrival/completion rates, and the Little's-law predicted queue
//!   wait. Answers `200` with an empty shard list when sampling is off.
//! * `GET /timeseries.json` — the saturation snapshot ring dump
//!   (oldest first); an empty ring is `200` with an empty `samples`
//!   array, never an error.
//! * `GET /profile.folded` — folded-stack samples
//!   (`stage;engine_kind count` lines) from the attached
//!   [`cfg_obs::SamplingProfiler`], ready for flamegraph tooling.
//! * `GET /audit.json` — live shadow-audit correctness counters from
//!   the attached [`cfg_obs::AuditBank`]: sessions sampled/audited/
//!   shed, fires confirmed by the exact parser, precision %, per-token
//!   false positives, and cross-engine divergences. Answers `200` with
//!   `{"enabled":false}` when auditing is off.
//! * `GET /mismatches.jsonl` — the divergence evidence ring from the
//!   attached [`cfg_obs::MismatchRing`], one JSON object per
//!   divergence (byte window, offsets, both engines' event streams);
//!   empty body when auditing is off.
//!
//! The exporter runs on one `std::net::TcpListener` accept loop —
//! serving a scrape costs a snapshot of lock-free counters, so the
//! tagging hot path never blocks on the exporter (and pays nothing at
//! all between scrapes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cfg_obs::{
    json, AuditBank, MismatchRing, ProbeBank, RegistrySnapshot, SamplingProfiler, SharedRegistry,
    SloTracker, SpanRecorder, Stat, TimeSeries, TriggerHub,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Shared service-level state the endpoints report: readiness, the
/// dead-stream flag, and pre-encoded metadata (compile report, token
/// names) for `/report.json`.
#[derive(Debug, Default)]
pub struct ServiceState {
    ready: AtomicBool,
    dead: AtomicBool,
    overloaded: AtomicBool,
    meta_json: Mutex<Option<String>>,
    circuit_json: Mutex<Option<String>>,
    probe_bank: Mutex<Option<Arc<ProbeBank>>>,
    trigger_hub: Mutex<Option<Arc<TriggerHub>>>,
    token_names: Mutex<Vec<String>>,
    slo_tracker: Mutex<Option<Arc<SloTracker>>>,
    span_recorder: Mutex<Option<Arc<SpanRecorder>>>,
    timeseries: Mutex<Option<Arc<TimeSeries>>>,
    profiler: Mutex<Option<Arc<SamplingProfiler>>>,
    audit_bank: Mutex<Option<Arc<AuditBank>>>,
    mismatch_ring: Mutex<Option<Arc<MismatchRing>>>,
}

impl ServiceState {
    /// Fresh state: not ready, not dead, no metadata.
    pub fn new() -> ServiceState {
        ServiceState::default()
    }

    /// Mark the tagger compiled (readiness gate).
    pub fn set_ready(&self, ready: bool) {
        self.ready.store(ready, Ordering::Relaxed);
    }

    /// Record whether the stream is in the dead state. A dead stream
    /// drops `/readyz` to 503 so an orchestrator can recycle the
    /// process.
    pub fn set_dead(&self, dead: bool) {
        self.dead.store(dead, Ordering::Relaxed);
    }

    /// Record whether the serving layer is currently shedding load
    /// (e.g. the ingest server's shard queues are full). An overloaded
    /// service drops `/readyz` to 503 so load balancers stop routing
    /// new sessions to it, without marking the process unhealthy.
    pub fn set_overloaded(&self, overloaded: bool) {
        self.overloaded.store(overloaded, Ordering::Relaxed);
    }

    /// Whether [`ServiceState::set_ready`] has been called with `true`.
    pub fn ready(&self) -> bool {
        self.ready.load(Ordering::Relaxed)
    }

    /// Whether the stream was marked dead.
    pub fn dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    /// Whether the serving layer reported itself shedding load.
    pub fn overloaded(&self) -> bool {
        self.overloaded.load(Ordering::Relaxed)
    }

    /// Install pre-encoded JSON metadata (must be one valid JSON value,
    /// e.g. `{"compile":{...},"tokens":[...]}`) surfaced verbatim under
    /// the `"meta"` key of `/report.json`.
    pub fn set_meta_json(&self, meta: String) {
        *self.meta_json.lock().unwrap() = Some(meta);
    }

    fn meta_json(&self) -> String {
        self.meta_json.lock().unwrap().clone().unwrap_or_else(|| "{}".to_string())
    }

    /// Install the pre-encoded circuit topology served at
    /// `/circuit.json` (one valid JSON value; probe ids must match the
    /// attached probe bank's order).
    pub fn set_circuit_json(&self, circuit: String) {
        *self.circuit_json.lock().unwrap() = Some(circuit);
    }

    /// Attach the live probe bank served at `/probes.json`.
    pub fn set_probe_bank(&self, bank: Arc<ProbeBank>) {
        *self.probe_bank.lock().unwrap() = Some(bank);
    }

    /// Attach the trigger hub behind `/trigger` and `/capture.jsonl`.
    pub fn set_trigger_hub(&self, hub: Arc<TriggerHub>) {
        *self.trigger_hub.lock().unwrap() = Some(hub);
    }

    /// Install token names: `/metrics` labels per-token fire counters
    /// with `name="..."` (escaped — names are user grammar text).
    pub fn set_token_names(&self, names: Vec<String>) {
        *self.token_names.lock().unwrap() = names;
    }

    /// Attach the SLO tracker served at `/slo.json` (the ingest server
    /// does this when tracing is configured).
    pub fn set_slo_tracker(&self, tracker: Arc<SloTracker>) {
        *self.slo_tracker.lock().unwrap() = Some(tracker);
    }

    /// Attach the span recorder served at `/spans.jsonl`.
    pub fn set_span_recorder(&self, recorder: Arc<SpanRecorder>) {
        *self.span_recorder.lock().unwrap() = Some(recorder);
    }

    /// Attach the saturation time series served at `/timeseries.json`
    /// and `/shards.json` (the ingest server does this when sampling
    /// is enabled). Unattached, both endpoints still answer `200` with
    /// empty data — saturation telemetry being off is not an error.
    pub fn set_timeseries(&self, series: Arc<TimeSeries>) {
        *self.timeseries.lock().unwrap() = Some(series);
    }

    /// Attach the sampling profiler served at `/profile.folded`.
    pub fn set_profiler(&self, profiler: Arc<SamplingProfiler>) {
        *self.profiler.lock().unwrap() = Some(profiler);
    }

    /// Attach the shadow-audit counters served at `/audit.json` and as
    /// `cfgtag_audit_*` rows in `/metrics` (the ingest server does this
    /// when auditing is configured). Unattached, `/audit.json` answers
    /// `200` with `{"enabled":false}` and `/metrics` stays audit-dark.
    pub fn set_audit_bank(&self, bank: Arc<AuditBank>) {
        *self.audit_bank.lock().unwrap() = Some(bank);
    }

    /// Attach the divergence evidence ring served at
    /// `/mismatches.jsonl`.
    pub fn set_mismatch_ring(&self, ring: Arc<MismatchRing>) {
        *self.mismatch_ring.lock().unwrap() = Some(ring);
    }

    fn circuit_json(&self) -> Option<String> {
        self.circuit_json.lock().unwrap().clone()
    }

    fn slo_tracker(&self) -> Option<Arc<SloTracker>> {
        self.slo_tracker.lock().unwrap().clone()
    }

    fn span_recorder(&self) -> Option<Arc<SpanRecorder>> {
        self.span_recorder.lock().unwrap().clone()
    }

    fn timeseries(&self) -> Option<Arc<TimeSeries>> {
        self.timeseries.lock().unwrap().clone()
    }

    fn profiler(&self) -> Option<Arc<SamplingProfiler>> {
        self.profiler.lock().unwrap().clone()
    }

    fn probe_bank(&self) -> Option<Arc<ProbeBank>> {
        self.probe_bank.lock().unwrap().clone()
    }

    fn audit_bank(&self) -> Option<Arc<AuditBank>> {
        self.audit_bank.lock().unwrap().clone()
    }

    fn mismatch_ring(&self) -> Option<Arc<MismatchRing>> {
        self.mismatch_ring.lock().unwrap().clone()
    }

    fn trigger_hub(&self) -> Option<Arc<TriggerHub>> {
        self.trigger_hub.lock().unwrap().clone()
    }

    fn token_names(&self) -> Vec<String> {
        self.token_names.lock().unwrap().clone()
    }
}

/// Sanitize a histogram/label name into a Prometheus metric-name chunk.
fn metric_chunk(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// Escape a label value per the Prometheus text format.
fn label_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a [`RegistrySnapshot`] + [`ServiceState`] in the Prometheus
/// text exposition format (version 0.0.4).
pub fn render_prometheus(snap: &RegistrySnapshot, state: &ServiceState) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(4096);

    let _ = writeln!(out, "# HELP cfgtag_ready Tagger compiled and stream not dead.");
    let _ = writeln!(out, "# TYPE cfgtag_ready gauge");
    let _ = writeln!(out, "cfgtag_ready {}", u8::from(state.ready() && !state.dead()));
    let _ = writeln!(out, "# HELP cfgtag_dead Stream has entered the dead state.");
    let _ = writeln!(out, "# TYPE cfgtag_dead gauge");
    let _ = writeln!(out, "cfgtag_dead {}", u8::from(state.dead()));
    let _ = writeln!(out, "# HELP cfgtag_overloaded Serving layer is currently shedding load.");
    let _ = writeln!(out, "# TYPE cfgtag_overloaded gauge");
    let _ = writeln!(out, "cfgtag_overloaded {}", u8::from(state.overloaded()));
    let _ = writeln!(out, "# HELP cfgtag_sinks Registered stats sinks.");
    let _ = writeln!(out, "# TYPE cfgtag_sinks gauge");
    let _ = writeln!(out, "cfgtag_sinks {}", snap.parts.len());

    // Counters: one series per (stat, sink); the merged value is the
    // sum over sinks, which Prometheus computes itself.
    for stat in Stat::ALL {
        let name = format!("cfgtag_{}_total", stat.name());
        let _ = writeln!(out, "# TYPE {name} counter");
        for (sink, part) in &snap.parts {
            let _ =
                writeln!(out, "{name}{{sink=\"{}\"}} {}", label_escape(sink), part.counter(stat));
        }
    }

    // Per-token fire counters, labelled by token index — and by name
    // when the service knows them. Token names come straight out of the
    // user's grammar (quoted literals may hold anything), so the name
    // label always passes through `label_escape`.
    let names = state.token_names();
    let _ = writeln!(out, "# TYPE cfgtag_token_fires_total counter");
    for (sink, part) in &snap.parts {
        for (index, fires) in part.token_fires.iter().enumerate() {
            if *fires > 0 {
                let name_label = match names.get(index) {
                    Some(name) => format!(",name=\"{}\"", label_escape(name)),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "cfgtag_token_fires_total{{sink=\"{}\",token=\"{index}\"{name_label}}} {fires}",
                    label_escape(sink)
                );
            }
        }
    }

    // Circuit-element probes, labelled by probe id. Ids embed class
    // descriptions (`dec/[\t-\r ]`) and token names — escape always.
    if let Some(bank) = state.probe_bank() {
        let _ = writeln!(out, "# TYPE cfgtag_probe_total counter");
        for (i, id) in bank.ids().iter().enumerate() {
            let count = bank.count(i as u32);
            if count > 0 {
                let _ =
                    writeln!(out, "cfgtag_probe_total{{probe=\"{}\"}} {count}", label_escape(id));
            }
        }
    }

    // Shadow-audit counters, present only while an audit bank is
    // attached *and* enabled — `/metrics` is audit-dark otherwise.
    if let Some(bank) = state.audit_bank().filter(|b| b.is_enabled()) {
        let _ =
            writeln!(out, "# HELP cfgtag_audit_sessions_total Sessions seen by the audit lane.");
        let _ = writeln!(out, "# TYPE cfgtag_audit_sessions_total counter");
        for (outcome, count) in [
            ("sampled", bank.sessions_sampled()),
            ("audited", bank.sessions_audited()),
            ("shed", bank.sessions_shed()),
        ] {
            let _ = writeln!(out, "cfgtag_audit_sessions_total{{outcome=\"{outcome}\"}} {count}");
        }
        let _ = writeln!(out, "# TYPE cfgtag_audit_frames_total counter");
        let _ = writeln!(out, "cfgtag_audit_frames_total {}", bank.frames_audited());
        let _ = writeln!(out, "# TYPE cfgtag_audit_bytes_total counter");
        let _ = writeln!(out, "cfgtag_audit_bytes_total {}", bank.bytes_audited());
        let _ = writeln!(out, "# HELP cfgtag_audit_fires_total Token fires replayed, by verdict.");
        let _ = writeln!(out, "# TYPE cfgtag_audit_fires_total counter");
        let _ = writeln!(out, "cfgtag_audit_fires_total{{verdict=\"all\"}} {}", bank.fires_total());
        let _ = writeln!(
            out,
            "cfgtag_audit_fires_total{{verdict=\"confirmed\"}} {}",
            bank.fires_confirmed()
        );
        let _ = writeln!(
            out,
            "# HELP cfgtag_audit_false_positives_total Fires the exact parser did not confirm."
        );
        let _ = writeln!(out, "# TYPE cfgtag_audit_false_positives_total counter");
        for index in 0..bank.token_count() {
            let count = bank.false_positives(index as u32);
            if count > 0 {
                let name_label = match names.get(index) {
                    Some(name) => format!(",name=\"{}\"", label_escape(name)),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "cfgtag_audit_false_positives_total{{token=\"{index}\"{name_label}}} {count}"
                );
            }
        }
        let _ = writeln!(out, "# HELP cfgtag_audit_divergences_total Cross-engine divergences.");
        let _ = writeln!(out, "# TYPE cfgtag_audit_divergences_total counter");
        let _ = writeln!(out, "cfgtag_audit_divergences_total {}", bank.divergences());
        if let Some(precision) = bank.precision_pct() {
            let _ = writeln!(out, "# TYPE cfgtag_audit_precision_pct gauge");
            let _ = writeln!(out, "cfgtag_audit_precision_pct {precision:.3}");
        }
    }

    // Trace-ring drops.
    let _ = writeln!(out, "# TYPE cfgtag_trace_dropped_total counter");
    for (sink, part) in &snap.parts {
        let _ = writeln!(
            out,
            "cfgtag_trace_dropped_total{{sink=\"{}\"}} {}",
            label_escape(sink),
            part.trace_dropped
        );
    }

    // Histograms: merged across sinks, power-of-two buckets rendered as
    // cumulative `le` series, plus p50/p90/p99 estimate gauges.
    for (hname, hist) in &snap.merged.histograms {
        let base = format!("cfgtag_{}", metric_chunk(hname));
        let _ = writeln!(out, "# TYPE {base} histogram");
        let mut cumulative = 0u64;
        for (i, b) in hist.buckets.iter().enumerate() {
            if *b == 0 {
                continue;
            }
            cumulative += *b;
            let le: u128 = 1u128 << (i + 1);
            let _ = writeln!(out, "{base}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{base}_sum {}", hist.sum);
        let _ = writeln!(out, "{base}_count {}", hist.count);
        let _ = writeln!(out, "# TYPE {base}_quantile gauge");
        for (q, tag) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            let _ = writeln!(out, "{base}_quantile{{quantile=\"{tag}\"}} {:.3}", hist.quantile(q));
        }
    }
    out
}

/// Render the `/report.json` body.
pub fn render_report(snap: &RegistrySnapshot, state: &ServiceState) -> String {
    let mut out = String::from("{\"ready\":");
    out.push_str(if state.ready() && !state.dead() { "true" } else { "false" });
    out.push_str(",\"dead\":");
    out.push_str(if state.dead() { "true" } else { "false" });
    out.push_str(",\"overloaded\":");
    out.push_str(if state.overloaded() { "true" } else { "false" });
    out.push_str(",\"meta\":");
    out.push_str(&state.meta_json());
    out.push_str(",\"stats\":");
    out.push_str(&snap.to_json());
    out.push_str("}\n");
    out
}

/// One rendered HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

/// Decode `%XX` escapes and `+` in one query-string component.
fn query_decode(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 3 <= bytes.len()
                && raw.is_char_boundary(i + 1)
                && raw.is_char_boundary(i + 3) =>
            {
                match u8::from_str_radix(&raw[i + 1..i + 3], 16) {
                    Ok(b) => {
                        out.push(b);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Pull one `key=value` pair out of a query string (decoded).
fn query_param(query: &str, key: &str) -> Option<String> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| query_decode(v))
}

fn respond_trigger(query: &str, state: &ServiceState) -> Response {
    let Some(hub) = state.trigger_hub() else {
        return Response {
            status: 404,
            content_type: "text/plain",
            body: "no trigger hub attached\n".into(),
        };
    };
    let Some(cond) = query_param(query, "cond") else {
        return Response {
            status: 400,
            content_type: "text/plain",
            body: "missing cond= (token:<name>, edge:<from>-><to>, dead)\n".into(),
        };
    };
    let pre = query_param(query, "pre").and_then(|v| v.parse().ok()).unwrap_or(32usize);
    let post = query_param(query, "post").and_then(|v| v.parse().ok()).unwrap_or(32usize);
    match hub.arm(&cond, pre, post) {
        Ok(_) => {
            let mut body = String::from("{\"armed\":");
            json::push_str(&mut body, &cond);
            body.push_str(&format!(",\"pre\":{pre},\"post\":{post}}}\n"));
            Response { status: 200, content_type: "application/json", body }
        }
        Err(e) => Response { status: 400, content_type: "text/plain", body: format!("{e}\n") },
    }
}

fn respond_capture(query: &str, state: &ServiceState) -> Response {
    let Some(hub) = state.trigger_hub() else {
        return Response {
            status: 404,
            content_type: "text/plain",
            body: "no trigger hub attached\n".into(),
        };
    };
    if query_param(query, "flush").is_some() {
        hub.flush();
    }
    let Some(trigger) = hub.active() else {
        return Response {
            status: 404,
            content_type: "text/plain",
            body: "no trigger armed\n".into(),
        };
    };
    match trigger.capture_jsonl() {
        Some(jsonl) => Response { status: 200, content_type: "application/jsonl", body: jsonl },
        None => Response {
            status: 503,
            content_type: "text/plain",
            body: if trigger.fired() {
                "capture in progress (post window filling)\n".into()
            } else {
                "armed, waiting for trigger\n".into()
            },
        },
    }
}

/// Route one request path to its response — the pure core of the
/// exporter, also what the endpoint unit tests drive.
pub fn respond(path: &str, registry: &SharedRegistry, state: &ServiceState) -> Response {
    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path, ""),
    };
    match path {
        "/metrics" => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: render_prometheus(&registry.snapshot(), state),
        },
        "/healthz" => Response { status: 200, content_type: "text/plain", body: "ok\n".into() },
        "/readyz" => {
            if state.ready() && !state.dead() && !state.overloaded() {
                Response { status: 200, content_type: "text/plain", body: "ready\n".into() }
            } else {
                let why = if state.dead() {
                    "dead stream"
                } else if !state.ready() {
                    "not compiled"
                } else {
                    "overloaded"
                };
                Response { status: 503, content_type: "text/plain", body: format!("{why}\n") }
            }
        }
        "/report.json" => Response {
            status: 200,
            content_type: "application/json",
            body: render_report(&registry.snapshot(), state),
        },
        "/circuit.json" => match state.circuit_json() {
            Some(body) => Response { status: 200, content_type: "application/json", body },
            None => Response {
                status: 404,
                content_type: "text/plain",
                body: "no circuit loaded\n".into(),
            },
        },
        "/probes.json" => match state.probe_bank() {
            Some(bank) => {
                let mut body = bank.to_json();
                body.push('\n');
                Response { status: 200, content_type: "application/json", body }
            }
            None => Response {
                status: 404,
                content_type: "text/plain",
                body: "no probe bank attached\n".into(),
            },
        },
        "/trigger" => respond_trigger(query, state),
        "/capture.jsonl" => respond_capture(query, state),
        "/slo.json" => match state.slo_tracker() {
            Some(tracker) => {
                let mut body = tracker.snapshot().to_json();
                body.push('\n');
                Response { status: 200, content_type: "application/json", body }
            }
            None => Response {
                status: 404,
                content_type: "text/plain",
                body: "no SLO tracker attached (serve with tracing enabled)\n".into(),
            },
        },
        // The three saturation endpoints answer 200 with empty data
        // when nothing is attached: sampling being off is a normal
        // serving configuration, not an error a poller should retry.
        "/shards.json" => Response {
            status: 200,
            content_type: "application/json",
            body: match state.timeseries() {
                Some(series) => series.shards_json(),
                None => "{\"window_ms\":0,\"shards\":[]}\n".into(),
            },
        },
        "/timeseries.json" => Response {
            status: 200,
            content_type: "application/json",
            body: match state.timeseries() {
                Some(series) => series.to_json(),
                None => "{\"interval_ms\":0,\"samples\":[]}\n".into(),
            },
        },
        "/profile.folded" => Response {
            status: 200,
            content_type: "text/plain",
            body: state.profiler().map(|p| p.folded()).unwrap_or_default(),
        },
        // The audit endpoints answer 200 whether or not a server is
        // auditing: like saturation, auditing being off is a normal
        // serving configuration, not an error a poller should retry.
        "/audit.json" => Response {
            status: 200,
            content_type: "application/json",
            body: match state.audit_bank() {
                Some(bank) => {
                    let mut body = bank.to_json(&state.token_names());
                    body.push('\n');
                    body
                }
                None => "{\"enabled\":false}\n".into(),
            },
        },
        "/mismatches.jsonl" => Response {
            status: 200,
            content_type: "application/jsonl",
            body: state.mismatch_ring().map(|r| r.dump_jsonl()).unwrap_or_default(),
        },
        "/spans.jsonl" => match state.span_recorder() {
            Some(recorder) => Response {
                status: 200,
                content_type: "application/jsonl",
                body: recorder.spans_jsonl(),
            },
            None => Response {
                status: 404,
                content_type: "text/plain",
                body: "no span recorder attached (serve with tracing enabled)\n".into(),
            },
        },
        "/" => {
            let mut body = String::from("{\"endpoints\":[\"/metrics\",\"/healthz\",\"/readyz\",\"/report.json\",\"/circuit.json\",\"/probes.json\",\"/trigger\",\"/capture.jsonl\",\"/slo.json\",\"/spans.jsonl\",\"/shards.json\",\"/timeseries.json\",\"/profile.folded\",\"/audit.json\",\"/mismatches.jsonl\"],\"sinks\":[");
            for (i, name) in registry.names().iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                json::push_str(&mut body, name);
            }
            body.push_str("]}\n");
            Response { status: 200, content_type: "application/json", body }
        }
        _ => Response { status: 404, content_type: "text/plain", body: "not found\n".into() },
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

fn serve_connection(stream: &mut TcpStream, registry: &SharedRegistry, state: &ServiceState) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    // Read until the end of the request head; ignore any body (GETs).
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 16 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or("/"));
    let response = if method == "GET" {
        respond(path, registry, state)
    } else {
        Response { status: 404, content_type: "text/plain", body: "GET only\n".into() }
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(response.body.as_bytes());
    let _ = stream.flush();
}

/// A running exporter: one background thread accepting connections
/// until [`Exporter::stop`] (or drop).
#[derive(Debug)]
pub struct Exporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Exporter {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving the registry + state on a background thread.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        registry: Arc<SharedRegistry>,
        state: Arc<ServiceState>,
    ) -> std::io::Result<Exporter> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cfgtag-exporter".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(mut stream) = conn {
                        serve_connection(&mut stream, &registry, &state);
                    }
                }
            })
            .expect("spawn exporter thread");
        Ok(Exporter { addr, stop, handle: Some(handle) })
    }

    /// The bound address (with the real port when an ephemeral one was
    /// requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the exporter thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            // Unblock the accept loop with one throwaway connection.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
            let _ = handle.join();
        }
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Blocking HTTP GET against `addr` (e.g. `"127.0.0.1:9100"`),
/// returning the response body. The client half of the exporter,
/// shared by `cfgtag top` and the integration tests; speaks just
/// enough HTTP/1.1 for our own server and any reasonable peer.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    http_get_status(addr, path).map(|(_, body)| body)
}

/// Like [`http_get`] but also returns the HTTP status code — for
/// endpoints where the status carries state (`/capture.jsonl` answers
/// `503` while a capture is pending).
pub fn http_get_status(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((head, body)) => {
            let status =
                head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "no HTTP status")
                })?;
            Ok((status, body.to_string()))
        }
        None => Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "no HTTP header split")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfg_obs::{MetricsSink, StatsSink};

    fn registry_with_traffic() -> SharedRegistry {
        let reg = SharedRegistry::new();
        let engine = Arc::new(StatsSink::with_tokens(3));
        engine.add(Stat::BytesIn, 1000);
        engine.token_fire(2, 5);
        engine.observe("decision_latency_ns", 700);
        engine.observe("decision_latency_ns", 90);
        reg.register("engine", engine);
        reg
    }

    #[test]
    fn prometheus_output_has_counters_histograms_and_quantiles() {
        let reg = registry_with_traffic();
        let state = ServiceState::new();
        state.set_ready(true);
        let text = render_prometheus(&reg.snapshot(), &state);
        assert!(text.contains("cfgtag_ready 1"));
        assert!(text.contains("cfgtag_bytes_in_total{sink=\"engine\"} 1000"));
        assert!(text.contains("cfgtag_token_fires_total{sink=\"engine\",token=\"2\"} 5"));
        assert!(text.contains("# TYPE cfgtag_decision_latency_ns histogram"));
        assert!(text.contains("cfgtag_decision_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("cfgtag_decision_latency_ns_sum 790"));
        assert!(text.contains("cfgtag_decision_latency_ns_quantile{quantile=\"0.99\"}"));
        // Buckets are cumulative: the 90 lands in le=128, the 700 in
        // le=1024.
        assert!(text.contains("cfgtag_decision_latency_ns_bucket{le=\"128\"} 1"));
        assert!(text.contains("cfgtag_decision_latency_ns_bucket{le=\"1024\"} 2"));
    }

    #[test]
    fn readyz_tracks_ready_and_dead() {
        let reg = SharedRegistry::new();
        let state = ServiceState::new();
        assert_eq!(respond("/readyz", &reg, &state).status, 503);
        state.set_ready(true);
        assert_eq!(respond("/readyz", &reg, &state).status, 200);
        state.set_dead(true);
        let r = respond("/readyz", &reg, &state);
        assert_eq!(r.status, 503);
        assert!(r.body.contains("dead"));
        assert_eq!(respond("/healthz", &reg, &state).status, 200);
        state.set_dead(false);
        state.set_overloaded(true);
        let r = respond("/readyz", &reg, &state);
        assert_eq!(r.status, 503);
        assert!(r.body.contains("overloaded"));
        let metrics = respond("/metrics", &reg, &state).body;
        assert!(metrics.contains("cfgtag_overloaded 1"));
        state.set_overloaded(false);
        assert_eq!(respond("/readyz", &reg, &state).status, 200);
        assert!(respond("/metrics", &reg, &state).body.contains("cfgtag_overloaded 0"));
        assert_eq!(respond("/nope", &reg, &state).status, 404);
        assert_eq!(respond("/metrics?x=1", &reg, &state).status, 200);
    }

    #[test]
    fn report_json_parses_and_carries_meta() {
        let reg = registry_with_traffic();
        let state = ServiceState::new();
        state.set_ready(true);
        state.set_meta_json("{\"tokens\":[\"a\",\"b\"]}".to_string());
        let body = respond("/report.json", &reg, &state).body;
        let v = json::Json::parse(&body).expect("report.json is valid JSON");
        assert_eq!(v.get("ready").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("dead").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("meta").unwrap().get("tokens").unwrap().as_array().unwrap().len(), 2);
        let merged = v.get("stats").unwrap().get("merged").unwrap();
        assert_eq!(merged.get("counters").unwrap().get("bytes_in").unwrap().as_u64(), Some(1000));
        assert!(v.get("stats").unwrap().get("sinks").unwrap().get("engine").is_some());
    }

    #[test]
    fn index_lists_endpoints_and_sinks() {
        let reg = registry_with_traffic();
        let state = ServiceState::new();
        let body = respond("/", &reg, &state).body;
        let v = json::Json::parse(&body).unwrap();
        assert!(v.get("endpoints").unwrap().as_array().unwrap().len() >= 4);
        assert_eq!(v.get("sinks").unwrap().as_array().unwrap()[0].as_str(), Some("engine"));
    }

    #[test]
    fn label_escaping() {
        assert_eq!(label_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(metric_chunk("route-latency.bytes"), "route_latency_bytes");
    }

    #[test]
    fn token_name_labels_are_escaped() {
        // Token names are user grammar text — a hostile name must come
        // out as a valid (escaped) Prometheus label value.
        let reg = registry_with_traffic();
        let state = ServiceState::new();
        state.set_token_names(vec!["x".into(), "y".into(), "a\"b\\c\nd".into()]);
        let text = render_prometheus(&reg.snapshot(), &state);
        assert!(text.contains(
            "cfgtag_token_fires_total{sink=\"engine\",token=\"2\",name=\"a\\\"b\\\\c\\nd\"} 5"
        ));
    }

    #[test]
    fn probe_series_escape_ids_and_skip_zeros() {
        let reg = SharedRegistry::new();
        let state = ServiceState::new();
        let bank = Arc::new(ProbeBank::new(vec!["dec/[\\t-\\r ]".into(), "tok/go/fire".into()]));
        bank.hit(0, 7);
        state.set_probe_bank(Arc::clone(&bank));
        let text = render_prometheus(&reg.snapshot(), &state);
        // Literal backslashes in the class description double on the way
        // out; zero-count probes are elided.
        assert!(text.contains("cfgtag_probe_total{probe=\"dec/[\\\\t-\\\\r ]\"} 7"));
        assert!(!text.contains("tok/go/fire"));
    }

    #[test]
    fn circuit_and_probe_endpoints() {
        let reg = SharedRegistry::new();
        let state = ServiceState::new();
        assert_eq!(respond("/circuit.json", &reg, &state).status, 404);
        assert_eq!(respond("/probes.json", &reg, &state).status, 404);

        state.set_circuit_json("{\"decoders\":[]}".into());
        let bank = Arc::new(ProbeBank::new(vec!["tok/go/fire".into()]));
        bank.hit(0, 3);
        state.set_probe_bank(bank);

        let c = respond("/circuit.json", &reg, &state);
        assert_eq!((c.status, c.content_type), (200, "application/json"));
        assert_eq!(c.body, "{\"decoders\":[]}");
        let p = respond("/probes.json", &reg, &state);
        assert_eq!(p.status, 200);
        let v = json::Json::parse(&p.body).unwrap();
        let probes = v.get("probes").unwrap().as_array().unwrap();
        assert_eq!(probes[0].get("id").unwrap().as_str(), Some("tok/go/fire"));
        assert_eq!(probes[0].get("count").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn slo_and_span_endpoints() {
        use cfg_obs::Stage;
        let reg = SharedRegistry::new();
        let state = ServiceState::new();
        assert_eq!(respond("/slo.json", &reg, &state).status, 404);
        assert_eq!(respond("/spans.jsonl", &reg, &state).status, 404);

        let tracker = Arc::new(SloTracker::new(1_000_000, 0.99));
        let recorder = Arc::new(SpanRecorder::new(16, 1, 0));
        let mut span = recorder.begin();
        span.stamp_at(Stage::QueueWait, 400);
        span.stamp_at(Stage::Engine, 700);
        span.stamp_at(Stage::AckWrite, 900);
        tracker.observe(&span);
        recorder.record(&span);
        state.set_slo_tracker(Arc::clone(&tracker));
        state.set_span_recorder(Arc::clone(&recorder));

        let slo = respond("/slo.json", &reg, &state);
        assert_eq!((slo.status, slo.content_type), (200, "application/json"));
        let v = json::Json::parse(&slo.body).unwrap();
        assert_eq!(v.get("total").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("stages").unwrap().get("engine").unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );

        let spans = respond("/spans.jsonl", &reg, &state);
        assert_eq!((spans.status, spans.content_type), (200, "application/jsonl"));
        let line = json::Json::parse(spans.body.lines().next().unwrap()).unwrap();
        assert_eq!(line.get("total_ns").unwrap().as_u64(), Some(900));

        let index = respond("/", &reg, &state).body;
        assert!(index.contains("/slo.json") && index.contains("/spans.jsonl"));
    }

    #[test]
    fn saturation_endpoints_answer_200_attached_or_not() {
        use cfg_obs::{ShardLoadBank, Stage, TickSnapshot};
        let reg = SharedRegistry::new();
        let state = ServiceState::new();

        // Unattached: still 200, with empty-but-valid payloads — the
        // poller-facing contract when sampling is off.
        let shards = respond("/shards.json", &reg, &state);
        assert_eq!((shards.status, shards.content_type), (200, "application/json"));
        let v = json::Json::parse(&shards.body).unwrap();
        assert_eq!(v.get("shards").unwrap().as_array().unwrap().len(), 0);
        let series = respond("/timeseries.json", &reg, &state);
        assert_eq!(series.status, 200);
        let v = json::Json::parse(&series.body).unwrap();
        assert_eq!(v.get("samples").unwrap().as_array().unwrap().len(), 0);
        let folded = respond("/profile.folded", &reg, &state);
        assert_eq!((folded.status, folded.content_type), (200, "text/plain"));
        assert_eq!(folded.body, "");

        // Attached with an empty ring: still 200 with an empty samples
        // array, never a 404/503.
        let bank = Arc::new(ShardLoadBank::new(2));
        let ts = Arc::new(TimeSeries::new(Arc::clone(&bank), 8, Duration::from_millis(50)));
        state.set_timeseries(Arc::clone(&ts));
        let empty = respond("/timeseries.json", &reg, &state);
        assert_eq!(empty.status, 200);
        let v = json::Json::parse(&empty.body).unwrap();
        assert_eq!(v.get("samples").unwrap().as_array().unwrap().len(), 0);

        // With traffic the gauges and ring come through.
        bank.arrive(0);
        bank.arrive(0);
        bank.dequeue(0);
        bank.record_work(0, 5_000_000, true);
        ts.push(TickSnapshot { t_ns: 0, shards: bank.sample() });
        ts.push(TickSnapshot { t_ns: 100_000_000, shards: bank.sample() });
        let shards = respond("/shards.json", &reg, &state);
        let v = json::Json::parse(&shards.body).unwrap();
        let rows = v.get("shards").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("queue_depth").unwrap().as_u64(), Some(1));
        let series = respond("/timeseries.json", &reg, &state);
        let v = json::Json::parse(&series.body).unwrap();
        assert_eq!(v.get("samples").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("interval_ms").unwrap().as_u64(), Some(50));

        let profiler = Arc::new(SamplingProfiler::new());
        let slot = profiler.register("bit");
        slot.enter(Stage::Engine);
        profiler.sample_once();
        state.set_profiler(Arc::clone(&profiler));
        let folded = respond("/profile.folded", &reg, &state);
        assert_eq!(folded.status, 200);
        assert!(folded.body.contains("engine;bit 1"), "{}", folded.body);

        let index = respond("/", &reg, &state).body;
        assert!(index.contains("/shards.json") && index.contains("/profile.folded"));
    }

    #[test]
    fn audit_endpoints_answer_200_attached_or_not() {
        use cfg_obs::{Mismatch, MismatchRing};
        let reg = SharedRegistry::new();
        let state = ServiceState::new();

        // Unattached: /audit.json reports auditing off, the mismatch
        // dump is empty, and /metrics carries no audit series at all.
        let audit = respond("/audit.json", &reg, &state);
        assert_eq!((audit.status, audit.content_type), (200, "application/json"));
        let v = json::Json::parse(&audit.body).unwrap();
        assert_eq!(v.get("enabled").unwrap().as_bool(), Some(false));
        let dump = respond("/mismatches.jsonl", &reg, &state);
        assert_eq!((dump.status, dump.content_type), (200, "application/jsonl"));
        assert_eq!(dump.body, "");
        assert!(!respond("/metrics", &reg, &state).body.contains("cfgtag_audit_"));

        // Attached with traffic: counters, per-token FP labels (named
        // via the service's token names), and the precision gauge.
        let bank = Arc::new(AuditBank::new(2));
        bank.session_sampled();
        bank.session_audited();
        bank.frame_audited(100);
        bank.fires(4, 3);
        bank.false_positive(1);
        bank.divergence();
        state.set_audit_bank(Arc::clone(&bank));
        state.set_token_names(vec!["num".into(), "str".into()]);
        let ring = Arc::new(MismatchRing::new(4));
        ring.record(Mismatch {
            session: 7,
            frame: 0,
            window_start: 0,
            window: b"<x>".to_vec(),
            fast: vec![],
            reference: vec![],
        });
        state.set_mismatch_ring(Arc::clone(&ring));

        let v = json::Json::parse(&respond("/audit.json", &reg, &state).body).unwrap();
        assert_eq!(v.get("enabled").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("fires_total").unwrap().as_u64(), Some(4));
        let metrics = respond("/metrics", &reg, &state).body;
        assert!(metrics.contains("cfgtag_audit_sessions_total{outcome=\"sampled\"} 1"));
        assert!(metrics.contains("cfgtag_audit_fires_total{verdict=\"confirmed\"} 3"));
        assert!(metrics.contains("cfgtag_audit_false_positives_total{token=\"1\",name=\"str\"} 1"));
        assert!(metrics.contains("cfgtag_audit_divergences_total 1"));
        assert!(metrics.contains("cfgtag_audit_precision_pct 75.000"));
        let dump = respond("/mismatches.jsonl", &reg, &state);
        let line = json::Json::parse(dump.body.lines().next().unwrap()).unwrap();
        assert_eq!(line.get("session").unwrap().as_u64(), Some(7));

        // Disabled bank: /metrics goes audit-dark again.
        bank.set_enabled(false);
        assert!(!respond("/metrics", &reg, &state).body.contains("cfgtag_audit_"));

        let index = respond("/", &reg, &state).body;
        assert!(index.contains("/audit.json") && index.contains("/mismatches.jsonl"));
    }

    #[test]
    fn trigger_arm_and_capture_flow() {
        use cfg_obs::TraceEvent;
        let reg = SharedRegistry::new();
        let state = ServiceState::new();
        assert_eq!(respond("/trigger?cond=dead", &reg, &state).status, 404);
        assert_eq!(respond("/capture.jsonl", &reg, &state).status, 404);

        let hub = Arc::new(TriggerHub::new(vec!["if".into(), "go".into()]));
        state.set_trigger_hub(Arc::clone(&hub));
        assert_eq!(respond("/capture.jsonl", &reg, &state).status, 404);
        assert_eq!(respond("/trigger", &reg, &state).status, 400);
        let bad = respond("/trigger?cond=token:nope", &reg, &state);
        assert_eq!(bad.status, 400);
        assert!(bad.body.contains("nope"));

        let armed = respond("/trigger?cond=token:go&pre=1&post=1", &reg, &state);
        assert_eq!(armed.status, 200);
        assert!(armed.body.contains("\"armed\":\"token:go\""));
        assert_eq!(respond("/capture.jsonl", &reg, &state).status, 503);

        hub.trace(TraceEvent::new("token_fire").field("token", 0u32));
        hub.trace(TraceEvent::new("token_fire").field("token", 1u32));
        assert_eq!(respond("/capture.jsonl", &reg, &state).status, 503);
        // Force-complete the half-filled post window.
        let cap = respond("/capture.jsonl?flush=1", &reg, &state);
        assert_eq!(cap.status, 200);
        let lines: Vec<&str> = cap.body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"token\":1"));
    }

    #[test]
    fn query_decoding() {
        assert_eq!(query_decode("token%3Ago"), "token:go");
        assert_eq!(query_decode("edge:if-%3Etrue"), "edge:if->true");
        assert_eq!(query_decode("a+b%zz"), "a b%zz");
        assert_eq!(query_param("cond=dead&pre=4", "pre").as_deref(), Some("4"));
        assert_eq!(query_param("cond=dead", "post"), None);
    }
}
