//! # cfg-obs-http — the live telemetry exporter
//!
//! A dependency-free, blocking, single-threaded HTTP exporter over a
//! [`SharedRegistry`]: point a Prometheus scraper (or `curl`, or
//! `cfgtag top`) at a long-running tagger and watch it work. Endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition format: every
//!   [`Stat`] counter per registered sink, per-token fire counters,
//!   histograms with power-of-two `le` buckets plus p50/p90/p99
//!   quantile gauges, and service gauges (`cfgtag_ready`,
//!   `cfgtag_dead`, `cfgtag_sinks`).
//! * `GET /healthz` — liveness: `200 ok` whenever the exporter thread
//!   is serving.
//! * `GET /readyz` — readiness: `200 ready` once the tagger is
//!   compiled ([`ServiceState::set_ready`]) and the stream has not
//!   entered the dead state, `503` otherwise.
//! * `GET /report.json` — the merged [`RegistrySnapshot`] plus the
//!   service metadata (compile report, token names) as one JSON object.
//!
//! The exporter runs on one `std::net::TcpListener` accept loop —
//! serving a scrape costs a snapshot of lock-free counters, so the
//! tagging hot path never blocks on the exporter (and pays nothing at
//! all between scrapes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cfg_obs::{json, RegistrySnapshot, SharedRegistry, Stat};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Shared service-level state the endpoints report: readiness, the
/// dead-stream flag, and pre-encoded metadata (compile report, token
/// names) for `/report.json`.
#[derive(Debug, Default)]
pub struct ServiceState {
    ready: AtomicBool,
    dead: AtomicBool,
    meta_json: Mutex<Option<String>>,
}

impl ServiceState {
    /// Fresh state: not ready, not dead, no metadata.
    pub fn new() -> ServiceState {
        ServiceState::default()
    }

    /// Mark the tagger compiled (readiness gate).
    pub fn set_ready(&self, ready: bool) {
        self.ready.store(ready, Ordering::Relaxed);
    }

    /// Record whether the stream is in the dead state. A dead stream
    /// drops `/readyz` to 503 so an orchestrator can recycle the
    /// process.
    pub fn set_dead(&self, dead: bool) {
        self.dead.store(dead, Ordering::Relaxed);
    }

    /// Whether [`ServiceState::set_ready`] has been called with `true`.
    pub fn ready(&self) -> bool {
        self.ready.load(Ordering::Relaxed)
    }

    /// Whether the stream was marked dead.
    pub fn dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    /// Install pre-encoded JSON metadata (must be one valid JSON value,
    /// e.g. `{"compile":{...},"tokens":[...]}`) surfaced verbatim under
    /// the `"meta"` key of `/report.json`.
    pub fn set_meta_json(&self, meta: String) {
        *self.meta_json.lock().unwrap() = Some(meta);
    }

    fn meta_json(&self) -> String {
        self.meta_json.lock().unwrap().clone().unwrap_or_else(|| "{}".to_string())
    }
}

/// Sanitize a histogram/label name into a Prometheus metric-name chunk.
fn metric_chunk(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// Escape a label value per the Prometheus text format.
fn label_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a [`RegistrySnapshot`] + [`ServiceState`] in the Prometheus
/// text exposition format (version 0.0.4).
pub fn render_prometheus(snap: &RegistrySnapshot, state: &ServiceState) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(4096);

    let _ = writeln!(out, "# HELP cfgtag_ready Tagger compiled and stream not dead.");
    let _ = writeln!(out, "# TYPE cfgtag_ready gauge");
    let _ = writeln!(out, "cfgtag_ready {}", u8::from(state.ready() && !state.dead()));
    let _ = writeln!(out, "# HELP cfgtag_dead Stream has entered the dead state.");
    let _ = writeln!(out, "# TYPE cfgtag_dead gauge");
    let _ = writeln!(out, "cfgtag_dead {}", u8::from(state.dead()));
    let _ = writeln!(out, "# HELP cfgtag_sinks Registered stats sinks.");
    let _ = writeln!(out, "# TYPE cfgtag_sinks gauge");
    let _ = writeln!(out, "cfgtag_sinks {}", snap.parts.len());

    // Counters: one series per (stat, sink); the merged value is the
    // sum over sinks, which Prometheus computes itself.
    for stat in Stat::ALL {
        let name = format!("cfgtag_{}_total", stat.name());
        let _ = writeln!(out, "# TYPE {name} counter");
        for (sink, part) in &snap.parts {
            let _ =
                writeln!(out, "{name}{{sink=\"{}\"}} {}", label_escape(sink), part.counter(stat));
        }
    }

    // Per-token fire counters, labelled by token index.
    let _ = writeln!(out, "# TYPE cfgtag_token_fires_total counter");
    for (sink, part) in &snap.parts {
        for (index, fires) in part.token_fires.iter().enumerate() {
            if *fires > 0 {
                let _ = writeln!(
                    out,
                    "cfgtag_token_fires_total{{sink=\"{}\",token=\"{index}\"}} {fires}",
                    label_escape(sink)
                );
            }
        }
    }

    // Trace-ring drops.
    let _ = writeln!(out, "# TYPE cfgtag_trace_dropped_total counter");
    for (sink, part) in &snap.parts {
        let _ = writeln!(
            out,
            "cfgtag_trace_dropped_total{{sink=\"{}\"}} {}",
            label_escape(sink),
            part.trace_dropped
        );
    }

    // Histograms: merged across sinks, power-of-two buckets rendered as
    // cumulative `le` series, plus p50/p90/p99 estimate gauges.
    for (hname, hist) in &snap.merged.histograms {
        let base = format!("cfgtag_{}", metric_chunk(hname));
        let _ = writeln!(out, "# TYPE {base} histogram");
        let mut cumulative = 0u64;
        for (i, b) in hist.buckets.iter().enumerate() {
            if *b == 0 {
                continue;
            }
            cumulative += *b;
            let le: u128 = 1u128 << (i + 1);
            let _ = writeln!(out, "{base}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{base}_sum {}", hist.sum);
        let _ = writeln!(out, "{base}_count {}", hist.count);
        let _ = writeln!(out, "# TYPE {base}_quantile gauge");
        for (q, tag) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            let _ = writeln!(out, "{base}_quantile{{quantile=\"{tag}\"}} {:.3}", hist.quantile(q));
        }
    }
    out
}

/// Render the `/report.json` body.
pub fn render_report(snap: &RegistrySnapshot, state: &ServiceState) -> String {
    let mut out = String::from("{\"ready\":");
    out.push_str(if state.ready() && !state.dead() { "true" } else { "false" });
    out.push_str(",\"dead\":");
    out.push_str(if state.dead() { "true" } else { "false" });
    out.push_str(",\"meta\":");
    out.push_str(&state.meta_json());
    out.push_str(",\"stats\":");
    out.push_str(&snap.to_json());
    out.push_str("}\n");
    out
}

/// One rendered HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

/// Route one request path to its response — the pure core of the
/// exporter, also what the endpoint unit tests drive.
pub fn respond(path: &str, registry: &SharedRegistry, state: &ServiceState) -> Response {
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: render_prometheus(&registry.snapshot(), state),
        },
        "/healthz" => Response { status: 200, content_type: "text/plain", body: "ok\n".into() },
        "/readyz" => {
            if state.ready() && !state.dead() {
                Response { status: 200, content_type: "text/plain", body: "ready\n".into() }
            } else {
                let why = if state.dead() { "dead stream" } else { "not compiled" };
                Response { status: 503, content_type: "text/plain", body: format!("{why}\n") }
            }
        }
        "/report.json" => Response {
            status: 200,
            content_type: "application/json",
            body: render_report(&registry.snapshot(), state),
        },
        "/" => {
            let mut body = String::from("{\"endpoints\":[\"/metrics\",\"/healthz\",\"/readyz\",\"/report.json\"],\"sinks\":[");
            for (i, name) in registry.names().iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                json::push_str(&mut body, name);
            }
            body.push_str("]}\n");
            Response { status: 200, content_type: "application/json", body }
        }
        _ => Response { status: 404, content_type: "text/plain", body: "not found\n".into() },
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

fn serve_connection(stream: &mut TcpStream, registry: &SharedRegistry, state: &ServiceState) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    // Read until the end of the request head; ignore any body (GETs).
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 16 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or("/"));
    let response = if method == "GET" {
        respond(path, registry, state)
    } else {
        Response { status: 404, content_type: "text/plain", body: "GET only\n".into() }
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(response.body.as_bytes());
    let _ = stream.flush();
}

/// A running exporter: one background thread accepting connections
/// until [`Exporter::stop`] (or drop).
#[derive(Debug)]
pub struct Exporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Exporter {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving the registry + state on a background thread.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        registry: Arc<SharedRegistry>,
        state: Arc<ServiceState>,
    ) -> std::io::Result<Exporter> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cfgtag-exporter".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(mut stream) = conn {
                        serve_connection(&mut stream, &registry, &state);
                    }
                }
            })
            .expect("spawn exporter thread");
        Ok(Exporter { addr, stop, handle: Some(handle) })
    }

    /// The bound address (with the real port when an ephemeral one was
    /// requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the exporter thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            // Unblock the accept loop with one throwaway connection.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
            let _ = handle.join();
        }
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Blocking HTTP GET against `addr` (e.g. `"127.0.0.1:9100"`),
/// returning the response body. The client half of the exporter,
/// shared by `cfgtag top` and the integration tests; speaks just
/// enough HTTP/1.1 for our own server and any reasonable peer.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "no HTTP header split")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfg_obs::{MetricsSink, StatsSink};

    fn registry_with_traffic() -> SharedRegistry {
        let reg = SharedRegistry::new();
        let engine = Arc::new(StatsSink::with_tokens(3));
        engine.add(Stat::BytesIn, 1000);
        engine.token_fire(2, 5);
        engine.observe("decision_latency_ns", 700);
        engine.observe("decision_latency_ns", 90);
        reg.register("engine", engine);
        reg
    }

    #[test]
    fn prometheus_output_has_counters_histograms_and_quantiles() {
        let reg = registry_with_traffic();
        let state = ServiceState::new();
        state.set_ready(true);
        let text = render_prometheus(&reg.snapshot(), &state);
        assert!(text.contains("cfgtag_ready 1"));
        assert!(text.contains("cfgtag_bytes_in_total{sink=\"engine\"} 1000"));
        assert!(text.contains("cfgtag_token_fires_total{sink=\"engine\",token=\"2\"} 5"));
        assert!(text.contains("# TYPE cfgtag_decision_latency_ns histogram"));
        assert!(text.contains("cfgtag_decision_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("cfgtag_decision_latency_ns_sum 790"));
        assert!(text.contains("cfgtag_decision_latency_ns_quantile{quantile=\"0.99\"}"));
        // Buckets are cumulative: the 90 lands in le=128, the 700 in
        // le=1024.
        assert!(text.contains("cfgtag_decision_latency_ns_bucket{le=\"128\"} 1"));
        assert!(text.contains("cfgtag_decision_latency_ns_bucket{le=\"1024\"} 2"));
    }

    #[test]
    fn readyz_tracks_ready_and_dead() {
        let reg = SharedRegistry::new();
        let state = ServiceState::new();
        assert_eq!(respond("/readyz", &reg, &state).status, 503);
        state.set_ready(true);
        assert_eq!(respond("/readyz", &reg, &state).status, 200);
        state.set_dead(true);
        let r = respond("/readyz", &reg, &state);
        assert_eq!(r.status, 503);
        assert!(r.body.contains("dead"));
        assert_eq!(respond("/healthz", &reg, &state).status, 200);
        assert_eq!(respond("/nope", &reg, &state).status, 404);
        assert_eq!(respond("/metrics?x=1", &reg, &state).status, 200);
    }

    #[test]
    fn report_json_parses_and_carries_meta() {
        let reg = registry_with_traffic();
        let state = ServiceState::new();
        state.set_ready(true);
        state.set_meta_json("{\"tokens\":[\"a\",\"b\"]}".to_string());
        let body = respond("/report.json", &reg, &state).body;
        let v = json::Json::parse(&body).expect("report.json is valid JSON");
        assert_eq!(v.get("ready").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("dead").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("meta").unwrap().get("tokens").unwrap().as_array().unwrap().len(), 2);
        let merged = v.get("stats").unwrap().get("merged").unwrap();
        assert_eq!(merged.get("counters").unwrap().get("bytes_in").unwrap().as_u64(), Some(1000));
        assert!(v.get("stats").unwrap().get("sinks").unwrap().get("engine").is_some());
    }

    #[test]
    fn index_lists_endpoints_and_sinks() {
        let reg = registry_with_traffic();
        let state = ServiceState::new();
        let body = respond("/", &reg, &state).body;
        let v = json::Json::parse(&body).unwrap();
        assert!(v.get("endpoints").unwrap().as_array().unwrap().len() >= 4);
        assert_eq!(v.get("sinks").unwrap().as_array().unwrap()[0].as_str(), Some("engine"));
    }

    #[test]
    fn label_escaping() {
        assert_eq!(label_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(metric_chunk("route-latency.bytes"), "route_latency_bytes");
    }
}
