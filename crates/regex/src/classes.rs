//! Byte sets — the "decoded character" alphabet of the hardware.
//!
//! Every distinct byte (or byte class) used by any token pattern becomes a
//! *character decoder* in the generated circuit (Figures 4 and 5 of the
//! paper): an 8-input AND gate with selective inversion for a single byte,
//! or an OR combination of such decoders for classes like `nocase`,
//! `alphabet` and `alpha-numeric`. [`ByteSet`] is the software value these
//! decoders compute: a 256-bit membership set.

use std::fmt;

/// A set of byte values, stored as a 256-bit bitmap.
///
/// This is `Copy` and all operations are branch-free word ops, so it is
/// cheap enough to use as the alphabet symbol everywhere (templates, NFA
/// transitions, decoder descriptions).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ByteSet {
    bits: [u64; 4],
}

impl ByteSet {
    /// The empty set.
    pub const EMPTY: ByteSet = ByteSet { bits: [0; 4] };

    /// The full set (all 256 byte values).
    pub const FULL: ByteSet = ByteSet { bits: [u64::MAX; 4] };

    /// A set containing a single byte.
    pub fn singleton(b: u8) -> Self {
        let mut s = Self::EMPTY;
        s.insert(b);
        s
    }

    /// A set containing the inclusive range `lo..=hi`.
    pub fn range(lo: u8, hi: u8) -> Self {
        let mut s = Self::EMPTY;
        let mut b = lo;
        loop {
            s.insert(b);
            if b == hi {
                break;
            }
            b += 1;
        }
        s
    }

    /// Case-insensitive singleton: `{c, toggled-case(c)}` for ASCII
    /// letters, `{c}` otherwise. This is the paper's `nocase` decoder
    /// (Figure 5, "term: nocase a").
    pub fn nocase(b: u8) -> Self {
        let mut s = Self::singleton(b);
        if b.is_ascii_alphabetic() {
            s.insert(b ^ 0x20);
        }
        s
    }

    /// ASCII letters `[a-zA-Z]` — the paper's `alphabet` decoder.
    pub fn alphabet() -> Self {
        Self::range(b'a', b'z').union(Self::range(b'A', b'Z'))
    }

    /// ASCII letters and digits `[a-zA-Z0-9]` — the paper's
    /// `alpha-numeric` decoder.
    pub fn alphanumeric() -> Self {
        Self::alphabet().union(Self::digits())
    }

    /// ASCII digits `[0-9]`.
    pub fn digits() -> Self {
        Self::range(b'0', b'9')
    }

    /// Lex-style `\w`: letters, digits and underscore.
    pub fn word() -> Self {
        let mut s = Self::alphanumeric();
        s.insert(b'_');
        s
    }

    /// ASCII whitespace — the default *delimiter* class of the lexical
    /// scanner (space, tab, CR, LF, vertical tab, form feed).
    pub fn whitespace() -> Self {
        let mut s = Self::EMPTY;
        for b in [b' ', b'\t', b'\r', b'\n', 0x0b, 0x0c] {
            s.insert(b);
        }
        s
    }

    /// Lex's `.`: any byte except newline.
    pub fn dot() -> Self {
        Self::singleton(b'\n').complement()
    }

    /// Insert a byte.
    pub fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Remove a byte.
    pub fn remove(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] &= !(1u64 << (b & 63));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// Set union.
    pub fn union(&self, other: Self) -> Self {
        let mut bits = self.bits;
        for (a, b) in bits.iter_mut().zip(other.bits) {
            *a |= b;
        }
        ByteSet { bits }
    }

    /// Set intersection.
    pub fn intersect(&self, other: Self) -> Self {
        let mut bits = self.bits;
        for (a, b) in bits.iter_mut().zip(other.bits) {
            *a &= b;
        }
        ByteSet { bits }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: Self) -> Self {
        let mut bits = self.bits;
        for (a, b) in bits.iter_mut().zip(other.bits) {
            *a &= !b;
        }
        ByteSet { bits }
    }

    /// Complement within the 256-value byte universe — the paper's `!`
    /// operator (Figure 6b).
    pub fn complement(&self) -> Self {
        let mut bits = self.bits;
        for a in bits.iter_mut() {
            *a = !*a;
        }
        ByteSet { bits }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Number of bytes in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Do the two sets share any byte?
    pub fn intersects(&self, other: Self) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Is `self` a subset of `other`?
    pub fn is_subset(&self, other: Self) -> bool {
        self.difference(other).is_empty()
    }

    /// Iterate over member bytes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0..=255u8).filter(move |&b| self.contains(b))
    }

    /// The raw 256-bit membership bitmap as four `u64` words, word `k`
    /// covering bytes `64k..64k+63` (bit `b & 63` within the word). This
    /// is the decoder's truth table exported for bit-parallel kernels:
    /// a byte-class decode ROM is just these words rearranged so that
    /// one *byte* indexes a mask over *positions*.
    pub fn as_words(&self) -> [u64; 4] {
        self.bits
    }

    /// The single member, if the set is a singleton.
    pub fn as_singleton(&self) -> Option<u8> {
        if self.len() == 1 {
            self.iter().next()
        } else {
            None
        }
    }

    /// A compact human-readable rendering like `[a-z0-9_]`, used in net
    /// names and VHDL comments.
    pub fn describe(&self) -> String {
        if self.is_empty() {
            return "[]".to_owned();
        }
        if *self == Self::FULL {
            return "[\\x00-\\xff]".to_owned();
        }
        // Render the complement when it is much smaller, e.g. `[^<]`.
        let comp = self.complement();
        if comp.len() < self.len() && comp.len() <= 4 {
            let mut s = String::from("[^");
            for b in comp.iter() {
                push_byte(&mut s, b);
            }
            s.push(']');
            return s;
        }
        if let Some(b) = self.as_singleton() {
            let mut s = String::new();
            push_byte(&mut s, b);
            return s;
        }
        let mut s = String::from("[");
        let mut b = 0usize;
        while b < 256 {
            if self.contains(b as u8) {
                let start = b;
                while b + 1 < 256 && self.contains((b + 1) as u8) {
                    b += 1;
                }
                push_byte(&mut s, start as u8);
                if b > start + 1 {
                    s.push('-');
                    push_byte(&mut s, b as u8);
                } else if b == start + 1 {
                    push_byte(&mut s, b as u8);
                }
            }
            b += 1;
        }
        s.push(']');
        s
    }
}

fn push_byte(s: &mut String, b: u8) {
    match b {
        b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' => s.push(b as char),
        b'\n' => s.push_str("\\n"),
        b'\r' => s.push_str("\\r"),
        b'\t' => s.push_str("\\t"),
        0x20..=0x7e => {
            if matches!(b, b'[' | b']' | b'-' | b'^' | b'\\') {
                s.push('\\');
            }
            s.push(b as char);
        }
        _ => s.push_str(&format!("\\x{b:02x}")),
    }
}

impl Default for ByteSet {
    fn default() -> Self {
        Self::EMPTY
    }
}

impl fmt::Debug for ByteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteSet({})", self.describe())
    }
}

impl fmt::Display for ByteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

impl FromIterator<u8> for ByteSet {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        let mut s = Self::EMPTY;
        for b in iter {
            s.insert(b);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_range() {
        let s = ByteSet::singleton(b'a');
        assert!(s.contains(b'a'));
        assert!(!s.contains(b'b'));
        assert_eq!(s.len(), 1);
        assert_eq!(s.as_singleton(), Some(b'a'));

        let r = ByteSet::range(b'0', b'9');
        assert_eq!(r.len(), 10);
        assert!(r.contains(b'5'));
        assert!(!r.contains(b'a'));
    }

    #[test]
    fn full_range_wraparound_safe() {
        let r = ByteSet::range(0, 255);
        assert_eq!(r, ByteSet::FULL);
        assert_eq!(r.len(), 256);
    }

    #[test]
    fn nocase_pairs_letters() {
        assert_eq!(ByteSet::nocase(b'a'), ByteSet::nocase(b'A'));
        assert_eq!(ByteSet::nocase(b'a').len(), 2);
        assert_eq!(ByteSet::nocase(b'7').len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a = ByteSet::range(b'a', b'f');
        let b = ByteSet::range(b'd', b'k');
        assert_eq!(a.union(b).len(), 11);
        assert_eq!(a.intersect(b).len(), 3);
        assert_eq!(a.difference(b).len(), 3);
        assert!(a.intersects(b));
        assert!(!a.is_subset(b));
        assert!(a.intersect(b).is_subset(a));
        assert_eq!(a.complement().complement(), a);
        assert_eq!(a.complement().len(), 250);
    }

    #[test]
    fn named_classes() {
        assert_eq!(ByteSet::alphabet().len(), 52);
        assert_eq!(ByteSet::alphanumeric().len(), 62);
        assert_eq!(ByteSet::digits().len(), 10);
        assert_eq!(ByteSet::word().len(), 63);
        assert_eq!(ByteSet::whitespace().len(), 6);
        assert_eq!(ByteSet::dot().len(), 255);
        assert!(!ByteSet::dot().contains(b'\n'));
    }

    #[test]
    fn describe_renderings() {
        assert_eq!(ByteSet::singleton(b'a').describe(), "a");
        assert_eq!(ByteSet::digits().describe(), "[0-9]");
        assert_eq!(ByteSet::singleton(b'<').complement().describe(), "[^<]");
        assert_eq!(ByteSet::EMPTY.describe(), "[]");
        let two = ByteSet::from_iter([b'a', b'b']);
        assert_eq!(two.describe(), "[ab]");
    }

    #[test]
    fn iter_ascending() {
        let s = ByteSet::from_iter([b'z', b'a', b'm']);
        let v: Vec<u8> = s.iter().collect();
        assert_eq!(v, vec![b'a', b'm', b'z']);
    }
}
