//! # cfg-regex — token-pattern regular expressions
//!
//! The token list of a Lex/Yacc-style grammar defines each terminal as a
//! regular expression over bytes (e.g. `STRING [a-zA-Z0-9]+` or a quoted
//! literal such as `"<methodCall>"`). This crate implements the regex
//! subset used by the paper *Context-Free-Grammar based Token Tagger in
//! Reconfigurable Devices* (Cho, Moscola, Lockwood, 2006):
//!
//! * byte literals and escape sequences,
//! * character classes `[a-zA-Z0-9]`, negated classes `[^>]`,
//! * the `.` wildcard (any byte except `\n`, as in Lex),
//! * postfix `?` (one-or-none), `+` (one-or-more), `*` (zero-or-more)
//!   — the templates of Figure 6 of the paper,
//! * prefix `!` (single-byte complement — Figure 6b),
//! * grouping `( … )` and alternation `|` inside groups.
//!
//! Two evaluation models are provided and cross-checked by tests:
//!
//! * [`nfa`] — a software matcher over the Glushkov position automaton,
//!   the *reference semantics* (also used by the software-lexer baseline),
//! * [`template`] — the Glushkov construction itself ([`Template`]), which
//!   is exactly the structure the hardware generator lowers into pipelined
//!   AND-gate chains: **one position = one flip-flop**, the `follow`
//!   relation = the wiring between stages, and the `last` set = the match
//!   taps (with the Figure 7 longest-match lookahead derived from the
//!   follow classes).
//!
//! ```
//! use cfg_regex::{Pattern, MatchSemantics};
//!
//! let p = Pattern::parse("[+-]?[0-9]+").unwrap();
//! assert!(p.is_full_match(b"-42"));
//! assert_eq!(p.find_longest_at(b"123abc", 0, MatchSemantics::GlobalLongest), Some(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod classes;
pub mod nfa;
pub mod parse;
pub mod template;

pub use ast::Ast;
pub use classes::ByteSet;
pub use nfa::{Match, MatchSemantics, Nfa};
pub use parse::ParseError;
pub use template::Template;

/// A compiled token pattern: the parsed AST plus its Glushkov template and
/// a ready-to-run NFA. This is the unit the grammar layer stores per token.
#[derive(Debug, Clone)]
pub struct Pattern {
    /// The original pattern text, kept for diagnostics and VHDL comments.
    source: String,
    /// Parsed syntax tree.
    ast: Ast,
    /// Glushkov position automaton (the hardware structure).
    template: Template,
    /// Software matcher over the same automaton.
    nfa: Nfa,
}

impl Pattern {
    /// Parse a pattern from its textual form.
    pub fn parse(src: &str) -> Result<Self, ParseError> {
        let ast = parse::parse(src)?;
        Self::from_ast(src.to_owned(), ast)
    }

    /// Build a pattern that matches exactly the given literal bytes.
    ///
    /// Quoted strings in the grammar (`"<methodCall>"`) take this path; no
    /// metacharacter interpretation is performed.
    pub fn literal(bytes: &[u8]) -> Self {
        let ast = Ast::literal(bytes);
        // A literal can always be compiled; the only failure mode of
        // `from_ast` is an empty-language pattern, which a literal is not.
        Self::from_ast(String::from_utf8_lossy(bytes).into_owned(), ast)
            .expect("literal patterns always compile")
    }

    fn from_ast(source: String, ast: Ast) -> Result<Self, ParseError> {
        let template = Template::build(&ast);
        if template.positions.is_empty() && !template.nullable {
            return Err(ParseError::EmptyLanguage);
        }
        if template.nullable {
            // A token that can match the empty string would never consume a
            // byte and cannot be detected by a pipeline stage; Lex rejects
            // such token definitions too.
            return Err(ParseError::NullableToken);
        }
        let nfa = Nfa::from_template(&template);
        Ok(Self { source, ast, template, nfa })
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed AST.
    pub fn ast(&self) -> &Ast {
        &self.ast
    }

    /// The Glushkov template consumed by the hardware generator.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// The software matcher.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// Does the pattern match the whole input?
    pub fn is_full_match(&self, input: &[u8]) -> bool {
        self.nfa.is_full_match(input)
    }

    /// Longest match starting at `start`; returns the match length.
    pub fn find_longest_at(
        &self,
        input: &[u8],
        start: usize,
        semantics: MatchSemantics,
    ) -> Option<usize> {
        self.nfa.find_longest_at(input, start, semantics)
    }

    /// Number of "pattern bytes" this token contributes, following the
    /// paper's §4.3 accounting (the XML-RPC grammar is "approximately 300
    /// bytes of pattern data"): one byte per character *position* of the
    /// pattern, i.e. per pipeline register in the generated tokenizer.
    pub fn pattern_bytes(&self) -> usize {
        self.template.positions.len()
    }

    /// If the pattern is a plain literal, return its bytes.
    pub fn as_literal(&self) -> Option<Vec<u8>> {
        self.ast.as_literal()
    }
}

impl PartialEq for Pattern {
    fn eq(&self, other: &Self) -> bool {
        self.ast == other.ast
    }
}

impl Eq for Pattern {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_roundtrip() {
        let p = Pattern::literal(b"<methodCall>");
        assert!(p.is_full_match(b"<methodCall>"));
        assert!(!p.is_full_match(b"<methodCall"));
        assert_eq!(p.pattern_bytes(), 12);
        assert_eq!(p.as_literal().unwrap(), b"<methodCall>");
    }

    #[test]
    fn parsed_pattern_matches() {
        let p = Pattern::parse("[a-zA-Z0-9]+").unwrap();
        assert!(p.is_full_match(b"deposit42"));
        assert!(!p.is_full_match(b""));
        assert!(!p.is_full_match(b"with space"));
        assert_eq!(p.pattern_bytes(), 1);
        assert!(p.as_literal().is_none());
    }

    #[test]
    fn nullable_token_rejected() {
        assert!(matches!(Pattern::parse("a*"), Err(ParseError::NullableToken)));
        assert!(matches!(Pattern::parse("a?"), Err(ParseError::NullableToken)));
        assert!(matches!(Pattern::parse(""), Err(ParseError::NullableToken)));
    }

    #[test]
    fn pattern_bytes_counts_positions() {
        // [+-]?[0-9]+\.[0-9]+ has four positions: the sign, the integer
        // digits, the dot, the fraction digits.
        let p = Pattern::parse(r"[+-]?[0-9]+\.[0-9]+").unwrap();
        assert_eq!(p.pattern_bytes(), 4);
    }
}
