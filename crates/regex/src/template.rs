//! Glushkov position automaton — the hardware template.
//!
//! The paper's tokenizers (Figures 6 and 7) are pipelines with **one
//! flip-flop per character occurrence** of the pattern. The Glushkov
//! (position) construction produces exactly that structure from a regular
//! expression without ε-transitions:
//!
//! * every leaf byte-class occurrence is a *position* (one register),
//! * `first` positions are those that can start a match (wired to the
//!   tokenizer's enable input),
//! * `follow(p)` are the positions that can consume the next byte after
//!   `p` fired (the AND-gate chain wiring, including the self-loops that
//!   realise `+`/`*`),
//! * `last` positions are those whose firing completes a match (the taps
//!   feeding the token's detection output).
//!
//! The Figure 7 *longest-match lookahead* is also derived here:
//! [`Template::continuation_class`] gives, per last position, the byte
//! class that would extend the token — the hardware ANDs the match tap
//! with the inverted decoder of that class, one pipeline stage later.

use crate::ast::Ast;
use crate::classes::ByteSet;

/// The position automaton of one token pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// Byte class of each position, indexed by position id.
    pub positions: Vec<ByteSet>,
    /// Positions that may consume the first byte of a match.
    pub first: Vec<usize>,
    /// Positions whose firing completes a match.
    pub last: Vec<usize>,
    /// `follow[p]` = positions that may consume the byte after `p`.
    pub follow: Vec<Vec<usize>>,
    /// Whether the pattern matches the empty string (tokens reject this,
    /// but the construction supports it for composability).
    pub nullable: bool,
}

/// Transpose per-position byte classes into a 256-row position-mask ROM.
fn rom_of(classes: &[ByteSet]) -> Vec<u64> {
    let words = classes.len().div_ceil(64);
    let mut rom = vec![0u64; 256 * words];
    for (p, class) in classes.iter().enumerate() {
        let bits = class.as_words();
        for b in 0..256usize {
            if bits[b >> 6] & (1u64 << (b & 63)) != 0 {
                rom[b * words + (p >> 6)] |= 1u64 << (p & 63);
            }
        }
    }
    rom
}

/// first/last/nullable of a subexpression during construction.
struct Facts {
    nullable: bool,
    first: Vec<usize>,
    last: Vec<usize>,
}

impl Template {
    /// Build the position automaton for an AST.
    pub fn build(ast: &Ast) -> Template {
        let mut t = Template {
            positions: Vec::new(),
            first: Vec::new(),
            last: Vec::new(),
            follow: Vec::new(),
            nullable: false,
        };
        let facts = t.walk(ast);
        t.first = facts.first;
        t.last = facts.last;
        t.nullable = facts.nullable;
        t.first.sort_unstable();
        t.last.sort_unstable();
        for f in &mut t.follow {
            f.sort_unstable();
            f.dedup();
        }
        t
    }

    fn walk(&mut self, ast: &Ast) -> Facts {
        match ast {
            Ast::Empty => Facts { nullable: true, first: vec![], last: vec![] },
            Ast::Class(set) => {
                let p = self.positions.len();
                self.positions.push(*set);
                self.follow.push(Vec::new());
                Facts { nullable: false, first: vec![p], last: vec![p] }
            }
            Ast::Concat(parts) => {
                let mut acc = Facts { nullable: true, first: vec![], last: vec![] };
                for part in parts {
                    let f = self.walk(part);
                    // last(acc) can be followed by first(f).
                    for &l in &acc.last {
                        self.follow[l].extend_from_slice(&f.first);
                    }
                    if acc.nullable {
                        acc.first.extend_from_slice(&f.first);
                    }
                    if f.nullable {
                        acc.last.extend_from_slice(&f.last);
                    } else {
                        acc.last = f.last;
                    }
                    acc.nullable &= f.nullable;
                }
                acc
            }
            Ast::Alt(branches) => {
                let mut acc = Facts { nullable: false, first: vec![], last: vec![] };
                for br in branches {
                    let f = self.walk(br);
                    acc.nullable |= f.nullable;
                    acc.first.extend(f.first);
                    acc.last.extend(f.last);
                }
                acc
            }
            Ast::Optional(inner) => {
                let f = self.walk(inner);
                Facts { nullable: true, ..f }
            }
            Ast::Repeat { inner, min_zero } => {
                let f = self.walk(inner);
                // last may loop back to first.
                for &l in &f.last {
                    let firsts = f.first.clone();
                    self.follow[l].extend(firsts);
                }
                Facts { nullable: f.nullable || *min_zero, first: f.first, last: f.last }
            }
        }
    }

    /// Union of the byte classes of the follow positions of `p`: the set
    /// of bytes that would *continue* a token after position `p` fired.
    /// The Figure 7 longest-match gate is `match(p) AND NOT decode(this)`.
    pub fn continuation_class(&self, p: usize) -> ByteSet {
        self.follow[p].iter().fold(ByteSet::EMPTY, |acc, &q| acc.union(self.positions[q]))
    }

    /// True if some last position has a non-empty continuation, i.e. the
    /// token needs the Figure 7 lookahead register to report only the
    /// longest match.
    pub fn needs_lookahead(&self) -> bool {
        self.last.iter().any(|&p| !self.continuation_class(p).is_empty())
    }

    /// Union of all byte classes used by the pattern.
    pub fn alphabet(&self) -> ByteSet {
        self.positions.iter().fold(ByteSet::EMPTY, |acc, s| acc.union(*s))
    }

    /// Number of `u64` words needed to hold one position bitmask.
    pub fn mask_words(&self) -> usize {
        self.positions.len().div_ceil(64)
    }

    /// The byte→positions decode ROM: 256 rows of [`Template::mask_words`]
    /// words, row `b` holding bit `p` iff `positions[p]` contains byte
    /// `b`. This transposes the per-position decoder truth tables
    /// ([`ByteSet::as_words`]) into the lookup a bit-parallel scanner
    /// performs per input byte — the software analogue of the paper's
    /// §3.2 character decoders, evaluated for all positions at once.
    pub fn decode_rom(&self) -> Vec<u64> {
        rom_of(&self.positions)
    }

    /// The continuation ROM: same layout as [`Template::decode_rom`],
    /// but row `b` holds bit `p` iff byte `b` *extends* a match ending
    /// at position `p` (the Figure 7 longest-match lookahead class).
    pub fn continuation_rom(&self) -> Vec<u64> {
        let classes: Vec<ByteSet> =
            (0..self.positions.len()).map(|p| self.continuation_class(p)).collect();
        rom_of(&classes)
    }

    /// The reversed automaton: recognises the mirror language. `first`
    /// and `last` swap and the follow relation inverts. Used to recover
    /// a lexeme's *start* from its end position (the hardware only
    /// reports ends; the back-end runs the reverse automaton over the
    /// buffered stream, §3.4's "identification accomplished in
    /// software").
    pub fn reversed(&self) -> Template {
        let n = self.positions.len();
        let mut follow = vec![Vec::new(); n];
        for (p, fs) in self.follow.iter().enumerate() {
            for &q in fs {
                follow[q].push(p);
            }
        }
        for f in &mut follow {
            f.sort_unstable();
        }
        Template {
            positions: self.positions.clone(),
            first: self.last.clone(),
            last: self.first.clone(),
            follow,
            nullable: self.nullable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn template(src: &str) -> Template {
        Template::build(&parse(src).unwrap())
    }

    #[test]
    fn literal_chain() {
        let t = template("abc");
        assert_eq!(t.positions.len(), 3);
        assert_eq!(t.first, vec![0]);
        assert_eq!(t.last, vec![2]);
        assert_eq!(t.follow[0], vec![1]);
        assert_eq!(t.follow[1], vec![2]);
        assert!(t.follow[2].is_empty());
        assert!(!t.nullable);
        assert!(!t.needs_lookahead());
    }

    #[test]
    fn one_or_more_self_loop() {
        // a+ — Figure 6d/7 of the paper: a single position with a
        // self-loop; lookahead needed because 'a' continues the run.
        let t = template("a+");
        assert_eq!(t.positions.len(), 1);
        assert_eq!(t.follow[0], vec![0]);
        assert_eq!(t.first, vec![0]);
        assert_eq!(t.last, vec![0]);
        assert!(t.needs_lookahead());
        assert_eq!(t.continuation_class(0), ByteSet::singleton(b'a'));
    }

    #[test]
    fn optional_skips() {
        // [+-]?[0-9]+ — first = {sign, digit}, last = {digit}.
        let t = template("[+-]?[0-9]+");
        assert_eq!(t.positions.len(), 2);
        assert_eq!(t.first, vec![0, 1]);
        assert_eq!(t.last, vec![1]);
        assert_eq!(t.follow[0], vec![1]);
        assert_eq!(t.follow[1], vec![1]);
    }

    #[test]
    fn alternation_shares_ends() {
        let t = template("go|stop");
        assert_eq!(t.positions.len(), 6);
        assert_eq!(t.first, vec![0, 2]);
        assert_eq!(t.last, vec![1, 5]);
    }

    #[test]
    fn double_pattern_structure() {
        // [+-]?[0-9]+\.[0-9]+ — positions: sign, int digits, dot, frac.
        let t = template(r"[+-]?[0-9]+\.[0-9]+");
        assert_eq!(t.positions.len(), 4);
        assert_eq!(t.first, vec![0, 1]);
        assert_eq!(t.last, vec![3]);
        assert_eq!(t.follow[1], vec![1, 2]);
        assert_eq!(t.follow[2], vec![3]);
        assert_eq!(t.follow[3], vec![3]);
        // Longest-match continuation after the final digit is a digit.
        assert_eq!(t.continuation_class(3), ByteSet::digits());
    }

    #[test]
    fn star_inside_concat() {
        // ab*c: follow(a) = {b, c}; follow(b) = {b, c}.
        let t = template("ab*c");
        assert_eq!(t.follow[0], vec![1, 2]);
        assert_eq!(t.follow[1], vec![1, 2]);
        assert_eq!(t.first, vec![0]);
        assert_eq!(t.last, vec![2]);
    }

    #[test]
    fn nullable_whole_pattern() {
        let t = template("a*");
        assert!(t.nullable);
        assert_eq!(t.first, vec![0]);
        assert_eq!(t.last, vec![0]);
    }

    #[test]
    fn reversed_template_matches_mirror_language() {
        use crate::nfa::Nfa;
        for (pattern, sample) in [
            ("abc", &b"abc"[..]),
            ("[+-]?[0-9]+", b"-42"),
            ("(ab)+", b"ababab"),
            ("go|stop", b"stop"),
        ] {
            let t = template(pattern);
            let rev = t.reversed();
            let fwd_nfa = Nfa::from_template(&t);
            let rev_nfa = Nfa::from_template(&rev);
            let mirrored: Vec<u8> = sample.iter().rev().copied().collect();
            assert!(fwd_nfa.is_full_match(sample), "{pattern}");
            assert!(rev_nfa.is_full_match(&mirrored), "{pattern} reversed");
            // Double reversal is the identity.
            assert_eq!(rev.reversed(), t, "{pattern}");
        }
    }

    #[test]
    fn decode_rom_transposes_position_classes() {
        let t = template(r"[+-]?[0-9]+\.[0-9]+");
        let words = t.mask_words();
        assert_eq!(words, 1);
        let rom = t.decode_rom();
        assert_eq!(rom.len(), 256 * words);
        for b in 0..=255u8 {
            for (p, class) in t.positions.iter().enumerate() {
                let bit = rom[b as usize * words + (p >> 6)] >> (p & 63) & 1;
                assert_eq!(bit == 1, class.contains(b), "byte {b} position {p}");
            }
        }
        // Row '5' lights both digit positions; row '.' only the dot.
        assert_eq!(rom[b'5' as usize], 0b1010);
        assert_eq!(rom[b'.' as usize], 0b0100);
    }

    #[test]
    fn continuation_rom_mirrors_continuation_classes() {
        let t = template("a+");
        let rom = t.continuation_rom();
        // After the single position, only 'a' extends the run.
        assert_eq!(rom[b'a' as usize], 0b1);
        assert_eq!(rom[b'b' as usize], 0);
    }

    #[test]
    fn nested_repeat_group() {
        // (ab)+ — follow(b) includes a (loop) ; last = {b}.
        let t = template("(ab)+");
        assert_eq!(t.follow[1], vec![0]);
        assert_eq!(t.first, vec![0]);
        assert_eq!(t.last, vec![1]);
        assert!(t.needs_lookahead());
        assert_eq!(t.continuation_class(1), ByteSet::singleton(b'a'));
    }
}
