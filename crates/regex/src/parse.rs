//! Parser for the Lex-style pattern subset.
//!
//! Grammar:
//!
//! ```text
//! pattern  := alt
//! alt      := seq ('|' seq)*            (alternation binds loosest)
//! seq      := elem*
//! elem     := base postfix*
//! base     := '!' base                  (single-byte complement, Fig. 6b)
//!           | '(' alt ')'
//!           | '[' class ']'
//!           | '.'                       (any byte except \n, as in Lex)
//!           | escape | plain-byte
//! postfix  := '+' | '*' | '?' | '{' n (',' m?)? '}'
//! ```
//!
//! Escapes: `\n \r \t \0 \\` plus any escaped metacharacter, `\xNN` hex
//! bytes, and the class shorthands `\d \w \s` (digits, word, whitespace).

use crate::ast::Ast;
use crate::classes::ByteSet;
use std::fmt;

/// Errors produced while parsing a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Input ended where more pattern was expected.
    UnexpectedEnd,
    /// An unexpected byte at the given offset.
    Unexpected {
        /// Byte offset in the pattern source.
        offset: usize,
        /// The offending byte.
        byte: u8,
        /// What the parser was doing.
        context: &'static str,
    },
    /// `[z-a]` style range with reversed endpoints.
    BadRange {
        /// Range start byte.
        lo: u8,
        /// Range end byte.
        hi: u8,
    },
    /// `\x` escape without two hex digits.
    BadHexEscape,
    /// `{n,m}` with `m < n` (or an unparseable count).
    BadCount {
        /// Minimum repetitions.
        min: usize,
        /// Maximum repetitions.
        max: usize,
    },
    /// A postfix operator with nothing to apply to, e.g. a leading `+`.
    DanglingPostfix(char),
    /// `!` applied to something other than a single-byte element.
    BadComplement,
    /// The pattern denotes the empty language.
    EmptyLanguage,
    /// The pattern can match the empty string; tokens must consume at
    /// least one byte.
    NullableToken,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedEnd => write!(f, "pattern ended unexpectedly"),
            ParseError::Unexpected { offset, byte, context } => write!(
                f,
                "unexpected byte {:?} at offset {offset} while parsing {context}",
                *byte as char
            ),
            ParseError::BadRange { lo, hi } => {
                write!(f, "bad class range {:?}-{:?}", *lo as char, *hi as char)
            }
            ParseError::BadHexEscape => write!(f, "\\x escape requires two hex digits"),
            ParseError::BadCount { min, max } => {
                write!(f, "bad repetition count {{{min},{max}}}")
            }
            ParseError::DanglingPostfix(c) => write!(f, "postfix '{c}' has nothing to repeat"),
            ParseError::BadComplement => {
                write!(f, "'!' applies only to a single-byte element")
            }
            ParseError::EmptyLanguage => write!(f, "pattern matches nothing"),
            ParseError::NullableToken => {
                write!(f, "token pattern may match the empty string")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse a pattern string into an [`Ast`].
pub fn parse(src: &str) -> Result<Ast, ParseError> {
    let mut p = Parser { src: src.as_bytes(), pos: 0 };
    let ast = p.alt()?;
    if p.pos != p.src.len() {
        return Err(ParseError::Unexpected {
            offset: p.pos,
            byte: p.src[p.pos],
            context: "end of pattern",
        });
    }
    Ok(ast)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, ParseError> {
        let b = self.peek().ok_or(ParseError::UnexpectedEnd)?;
        self.pos += 1;
        Ok(b)
    }

    fn alt(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.seq()?];
        while self.peek() == Some(b'|') {
            self.pos += 1;
            branches.push(self.seq()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alt(branches)
        })
    }

    fn seq(&mut self) -> Result<Ast, ParseError> {
        let mut parts = Vec::new();
        loop {
            match self.peek() {
                None | Some(b'|') | Some(b')') => break,
                Some(c @ (b'+' | b'*' | b'?')) => {
                    return Err(ParseError::DanglingPostfix(c as char));
                }
                Some(_) => parts.push(self.elem()?),
            }
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn elem(&mut self) -> Result<Ast, ParseError> {
        let mut base = self.base()?;
        while let Some(op) = self.peek() {
            match op {
                b'?' => {
                    self.pos += 1;
                    base = Ast::Optional(Box::new(base));
                }
                b'+' => {
                    self.pos += 1;
                    base = Ast::Repeat { inner: Box::new(base), min_zero: false };
                }
                b'*' => {
                    self.pos += 1;
                    base = Ast::Repeat { inner: Box::new(base), min_zero: true };
                }
                b'{' => {
                    self.pos += 1;
                    base = self.counted(base)?;
                }
                _ => break,
            }
        }
        Ok(base)
    }

    /// Lex-style counted repetition `{n}`, `{n,}`, `{n,m}` — expanded
    /// structurally (each copy becomes its own pipeline positions, which
    /// is exactly what the hardware needs).
    fn counted(&mut self, base: Ast) -> Result<Ast, ParseError> {
        let n = self.number()?;
        let m = match self.bump()? {
            b'}' => Some(n),
            b',' => match self.peek() {
                Some(b'}') => {
                    self.pos += 1;
                    None // {n,} = n or more
                }
                _ => {
                    let m = self.number()?;
                    match self.bump()? {
                        b'}' => Some(m),
                        byte => {
                            return Err(ParseError::Unexpected {
                                offset: self.pos - 1,
                                byte,
                                context: "counted repetition close",
                            })
                        }
                    }
                }
            },
            byte => {
                return Err(ParseError::Unexpected {
                    offset: self.pos - 1,
                    byte,
                    context: "counted repetition",
                })
            }
        };
        if let Some(m) = m {
            if m < n {
                return Err(ParseError::BadCount { min: n, max: m });
            }
        }
        // n mandatory copies…
        let mut parts: Vec<Ast> = std::iter::repeat_n(base.clone(), n).collect();
        match m {
            // …then (m - n) optional copies…
            Some(m) => {
                for _ in n..m {
                    parts.push(Ast::Optional(Box::new(base.clone())));
                }
            }
            // …or an unbounded tail for {n,}.
            None => parts.push(Ast::Repeat { inner: Box::new(base), min_zero: true }),
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn number(&mut self) -> Result<usize, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(ParseError::Unexpected {
                offset: self.pos,
                byte: self.peek().unwrap_or(0),
                context: "repetition count",
            });
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("digits are utf8");
        text.parse().map_err(|_| ParseError::BadCount { min: usize::MAX, max: 0 })
    }

    fn base(&mut self) -> Result<Ast, ParseError> {
        match self.bump()? {
            b'!' => {
                // Figure 6b: the complement of a single-byte element.
                let inner = self.base()?;
                match inner {
                    Ast::Class(s) => Ok(Ast::Class(s.complement())),
                    _ => Err(ParseError::BadComplement),
                }
            }
            b'(' => {
                let inner = self.alt()?;
                match self.bump()? {
                    b')' => Ok(inner),
                    byte => Err(ParseError::Unexpected {
                        offset: self.pos - 1,
                        byte,
                        context: "group close",
                    }),
                }
            }
            b'[' => self.class(),
            b'.' => Ok(Ast::Class(ByteSet::dot())),
            b'\\' => Ok(Ast::Class(self.escape()?)),
            b')' => {
                Err(ParseError::Unexpected { offset: self.pos - 1, byte: b')', context: "element" })
            }
            b => Ok(Ast::Class(ByteSet::singleton(b))),
        }
    }

    fn escape(&mut self) -> Result<ByteSet, ParseError> {
        Ok(match self.bump()? {
            b'n' => ByteSet::singleton(b'\n'),
            b'r' => ByteSet::singleton(b'\r'),
            b't' => ByteSet::singleton(b'\t'),
            b'0' => ByteSet::singleton(0),
            b'd' => ByteSet::digits(),
            b'w' => ByteSet::word(),
            b's' => ByteSet::whitespace(),
            b'x' => {
                let hi = self.bump()?;
                let lo = self.bump()?;
                let hex = |c: u8| (c as char).to_digit(16);
                match (hex(hi), hex(lo)) {
                    (Some(h), Some(l)) => ByteSet::singleton((h * 16 + l) as u8),
                    _ => return Err(ParseError::BadHexEscape),
                }
            }
            b => ByteSet::singleton(b),
        })
    }

    fn class(&mut self) -> Result<Ast, ParseError> {
        let negated = if self.peek() == Some(b'^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut set = ByteSet::EMPTY;
        let mut first = true;
        loop {
            let b = self.bump()?;
            if b == b']' && !first {
                break;
            }
            first = false;
            let lo_set = match b {
                b'\\' => self.escape()?,
                b']' => ByteSet::singleton(b']'), // leading ']' is literal, as in Lex
                b => ByteSet::singleton(b),
            };
            // Range only applies to single-byte left sides followed by '-x'.
            if let Some(lo) = lo_set.as_singleton() {
                if self.peek() == Some(b'-') && self.src.get(self.pos + 1) != Some(&b']') {
                    self.pos += 1; // consume '-'
                    let hb = self.bump()?;
                    let hi_set = if hb == b'\\' { self.escape()? } else { ByteSet::singleton(hb) };
                    let hi = hi_set.as_singleton().ok_or(ParseError::BadRange { lo, hi: 0 })?;
                    if hi < lo {
                        return Err(ParseError::BadRange { lo, hi });
                    }
                    set = set.union(ByteSet::range(lo, hi));
                    continue;
                }
            }
            set = set.union(lo_set);
        }
        let set = if negated { set.complement() } else { set };
        if set.is_empty() {
            return Err(ParseError::EmptyLanguage);
        }
        Ok(Ast::Class(set))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_of(src: &str) -> ByteSet {
        match parse(src).unwrap() {
            Ast::Class(s) => s,
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn single_bytes_and_literals() {
        assert_eq!(parse("a").unwrap(), Ast::Class(ByteSet::singleton(b'a')));
        let abc = parse("abc").unwrap();
        assert_eq!(abc.as_literal().unwrap(), b"abc");
    }

    #[test]
    fn classes_and_ranges() {
        assert_eq!(class_of("[a-z]"), ByteSet::range(b'a', b'z'));
        assert_eq!(class_of("[a-zA-Z0-9]"), ByteSet::alphanumeric());
        assert_eq!(class_of("[+-]"), ByteSet::from_iter([b'+', b'-']));
        assert_eq!(class_of("[+/A-Za-z0-9]").len(), 64); // base64 alphabet
        assert_eq!(class_of("[^>]"), ByteSet::singleton(b'>').complement());
        // Trailing '-' is a literal dash.
        assert_eq!(class_of("[a-]"), ByteSet::from_iter([b'a', b'-']));
        // Leading ']' is a literal bracket.
        assert_eq!(class_of("[]a]"), ByteSet::from_iter([b']', b'a']));
    }

    #[test]
    fn shorthand_classes() {
        assert_eq!(class_of(r"\d"), ByteSet::digits());
        assert_eq!(class_of(r"\s"), ByteSet::whitespace());
        assert_eq!(class_of(r"\w"), ByteSet::word());
        assert_eq!(class_of(r"\x41"), ByteSet::singleton(b'A'));
        assert_eq!(class_of(r"[\d\-]"), {
            let mut s = ByteSet::digits();
            s.insert(b'-');
            s
        });
    }

    #[test]
    fn postfix_operators() {
        let p = parse("[0-9]+").unwrap();
        assert!(matches!(p, Ast::Repeat { min_zero: false, .. }));
        let p = parse("x*").unwrap();
        assert!(matches!(p, Ast::Repeat { min_zero: true, .. }));
        let p = parse("x?").unwrap();
        assert!(matches!(p, Ast::Optional(_)));
        // Stacked postfix: (x+)? parses as Optional(Repeat).
        let p = parse("x+?").unwrap();
        assert!(matches!(p, Ast::Optional(_)));
    }

    #[test]
    fn complement_element() {
        assert_eq!(class_of("!a"), ByteSet::singleton(b'a').complement());
        assert_eq!(parse("!(ab)"), Err(ParseError::BadComplement));
    }

    #[test]
    fn groups_and_alternation() {
        let p = parse("(go|stop)").unwrap();
        assert!(matches!(p, Ast::Alt(ref v) if v.len() == 2));
        let p = parse("a(b|c)d").unwrap();
        assert_eq!(p.position_count(), 4);
    }

    #[test]
    fn dot_is_lex_dot() {
        assert_eq!(class_of("."), ByteSet::dot());
        assert_eq!(class_of(r"\."), ByteSet::singleton(b'.'));
    }

    #[test]
    fn errors() {
        assert_eq!(parse("[z-a]"), Err(ParseError::BadRange { lo: b'z', hi: b'a' }));
        assert_eq!(parse("+a"), Err(ParseError::DanglingPostfix('+')));
        assert_eq!(parse("(a"), Err(ParseError::UnexpectedEnd));
        assert_eq!(parse(r"\xg1"), Err(ParseError::BadHexEscape));
        assert!(matches!(parse("a)b"), Err(ParseError::Unexpected { .. })));
        assert_eq!(parse("[abc"), Err(ParseError::UnexpectedEnd));
    }

    #[test]
    fn counted_repetition() {
        // {n}: YEAR could be written [0-9]{4}.
        let p = parse("[0-9]{4}").unwrap();
        assert_eq!(p.position_count(), 4);
        assert!(!p.nullable());
        // {n,m}: between 2 and 4 letters.
        let p = parse("[a-z]{2,4}").unwrap();
        assert_eq!(p.position_count(), 4);
        // {n,}: 2 or more — two mandatory positions plus a star tail.
        let p = parse("a{2,}").unwrap();
        assert_eq!(p.position_count(), 3);
        // {0,1} behaves like '?'.
        let p = parse("xa{0,1}").unwrap();
        assert_eq!(p.position_count(), 2);
        // Errors.
        assert!(matches!(parse("a{3,2}"), Err(ParseError::BadCount { min: 3, max: 2 })));
        assert!(matches!(parse("a{x}"), Err(ParseError::Unexpected { .. })));
        assert!(matches!(parse("a{2"), Err(ParseError::UnexpectedEnd)));
    }

    #[test]
    fn counted_repetition_matches() {
        use crate::Pattern;
        let p = Pattern::parse("[0-9]{4}").unwrap();
        assert!(p.is_full_match(b"1998"));
        assert!(!p.is_full_match(b"199"));
        assert!(!p.is_full_match(b"19985"));
        let p = Pattern::parse("[a-z]{2,4}").unwrap();
        assert!(!p.is_full_match(b"a"));
        assert!(p.is_full_match(b"ab"));
        assert!(p.is_full_match(b"abcd"));
        assert!(!p.is_full_match(b"abcde"));
        let p = Pattern::parse("a{2,}").unwrap();
        assert!(!p.is_full_match(b"a"));
        assert!(p.is_full_match(b"aa"));
        assert!(p.is_full_match(b"aaaaaa"));
    }

    #[test]
    fn paper_figure14_patterns_parse() {
        for src in [
            "[a-zA-Z0-9]+",
            "[+-]?[0-9]+",
            r"[+-]?[0-9]+\.[0-9]+",
            "[0-9][0-9][0-9][0-9]",
            "[0-9][0-9]",
            "[+/A-Za-z0-9]",
        ] {
            parse(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }
}
