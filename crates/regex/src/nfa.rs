//! Software matcher over the Glushkov position automaton.
//!
//! This is the *reference semantics* for token patterns: the hardware
//! tokenizers, the fast functional engine and the software-lexer baseline
//! must all agree with it (property tests in the respective crates).
//!
//! Two match semantics are exposed because the hardware differs subtly
//! from a classical maximal-munch lexer:
//!
//! * [`MatchSemantics::GlobalLongest`] — classical Lex behaviour: run the
//!   automaton to exhaustion and report the longest accepted prefix.
//! * [`MatchSemantics::HardwareLookahead`] — Figure 7 behaviour: a match
//!   is asserted at byte `i` iff some *last* position fires at `i` and the
//!   byte at `i + 1` cannot extend the token **from that position**. For
//!   patterns like `ab|abc` the hardware may assert at both lengths; the
//!   paper (§3.3) resolves this by parallel paths and back-end priority.

use crate::classes::ByteSet;
use crate::template::Template;

/// How matches are selected; see module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchSemantics {
    /// Classical maximal munch.
    GlobalLongest,
    /// The paper's per-position lookahead (Figure 7).
    HardwareLookahead,
}

/// A match found by [`Nfa::hardware_ends`] or the lexer baselines: the
/// half-open byte span `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Match {
    /// First byte of the lexeme.
    pub start: usize,
    /// One past the last byte of the lexeme.
    pub end: usize,
}

impl Match {
    /// Length of the lexeme in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span is empty (never true for token matches).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Fixed-size bitset over automaton positions.
type Blocks = Vec<u64>;

/// A compiled Glushkov automaton with per-byte transition masks.
#[derive(Debug, Clone)]
pub struct Nfa {
    n: usize,
    blocks: usize,
    /// `byte_mask[b]` = positions whose class contains byte `b`.
    byte_mask: Vec<Blocks>,
    /// `follow_mask[p]` = positions that may fire after `p`.
    follow_mask: Vec<Blocks>,
    first_mask: Blocks,
    last_mask: Blocks,
    nullable: bool,
    /// Per position: bytes that extend the token after this position.
    continuation: Vec<ByteSet>,
}

impl Nfa {
    /// Compile a template into transition masks.
    pub fn from_template(t: &Template) -> Nfa {
        let n = t.positions.len();
        let blocks = n.div_ceil(64).max(1);
        let mut byte_mask = vec![vec![0u64; blocks]; 256];
        for (p, class) in t.positions.iter().enumerate() {
            for b in class.iter() {
                byte_mask[b as usize][p / 64] |= 1 << (p % 64);
            }
        }
        let mut follow_mask = vec![vec![0u64; blocks]; n];
        for (p, follows) in t.follow.iter().enumerate() {
            for &q in follows {
                follow_mask[p][q / 64] |= 1 << (q % 64);
            }
        }
        let mut first_mask = vec![0u64; blocks];
        for &p in &t.first {
            first_mask[p / 64] |= 1 << (p % 64);
        }
        let mut last_mask = vec![0u64; blocks];
        for &p in &t.last {
            last_mask[p / 64] |= 1 << (p % 64);
        }
        let continuation = (0..n).map(|p| t.continuation_class(p)).collect();
        Nfa {
            n,
            blocks,
            byte_mask,
            follow_mask,
            first_mask,
            last_mask,
            nullable: t.nullable,
            continuation,
        }
    }

    /// Number of automaton positions.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the automaton has no positions.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Does the pattern match the entire input?
    pub fn is_full_match(&self, input: &[u8]) -> bool {
        if input.is_empty() {
            return self.nullable;
        }
        let mut candidates = self.first_mask.clone();
        let mut fired = vec![0u64; self.blocks];
        for (i, &b) in input.iter().enumerate() {
            let mask = &self.byte_mask[b as usize];
            let mut any = 0u64;
            for k in 0..self.blocks {
                fired[k] = candidates[k] & mask[k];
                any |= fired[k];
            }
            if any == 0 {
                return false;
            }
            if i + 1 == input.len() {
                return (0..self.blocks).any(|k| fired[k] & self.last_mask[k] != 0);
            }
            self.advance(&fired, &mut candidates);
        }
        unreachable!("loop returns on last byte");
    }

    /// Longest match starting at `start`, as a length in bytes.
    pub fn find_longest_at(
        &self,
        input: &[u8],
        start: usize,
        semantics: MatchSemantics,
    ) -> Option<usize> {
        match semantics {
            MatchSemantics::GlobalLongest => self.global_longest(input, start),
            MatchSemantics::HardwareLookahead => {
                self.hardware_ends(input, start).into_iter().max().map(|e| e - start)
            }
        }
    }

    fn global_longest(&self, input: &[u8], start: usize) -> Option<usize> {
        let mut best = if self.nullable { Some(0) } else { None };
        let mut candidates = self.first_mask.clone();
        let mut fired = vec![0u64; self.blocks];
        for (off, &b) in input[start..].iter().enumerate() {
            let mask = &self.byte_mask[b as usize];
            let mut any = 0u64;
            for k in 0..self.blocks {
                fired[k] = candidates[k] & mask[k];
                any |= fired[k];
            }
            if any == 0 {
                break;
            }
            if (0..self.blocks).any(|k| fired[k] & self.last_mask[k] != 0) {
                best = Some(off + 1);
            }
            self.advance(&fired, &mut candidates);
        }
        best
    }

    /// All end offsets (exclusive) the *hardware* would assert for a token
    /// started at `start`: a last position fires and the next input byte
    /// does not continue from it (Figure 7 lookahead). End-of-input counts
    /// as "no continuation".
    #[allow(clippy::needless_range_loop)] // k also derives bit positions
    pub fn hardware_ends(&self, input: &[u8], start: usize) -> Vec<usize> {
        let mut ends = Vec::new();
        let mut candidates = self.first_mask.clone();
        let mut fired = vec![0u64; self.blocks];
        for (off, &b) in input[start..].iter().enumerate() {
            let mask = &self.byte_mask[b as usize];
            let mut any = 0u64;
            for ((f, c), m) in fired.iter_mut().zip(&candidates).zip(mask) {
                *f = c & m;
                any |= *f;
            }
            if any == 0 {
                break;
            }
            let next = input.get(start + off + 1).copied();
            'blocks: for k in 0..self.blocks {
                let mut lasts = fired[k] & self.last_mask[k];
                while lasts != 0 {
                    let p = k * 64 + lasts.trailing_zeros() as usize;
                    lasts &= lasts - 1;
                    let continues = match next {
                        Some(nb) => self.continuation[p].contains(nb),
                        None => false,
                    };
                    if !continues {
                        // One assertion per byte is enough; further last
                        // positions at the same offset duplicate it.
                        ends.push(start + off + 1);
                        break 'blocks;
                    }
                }
            }
            self.advance(&fired, &mut candidates);
        }
        ends
    }

    /// Every end offset (exclusive) at which a match starting at `start`
    /// is accepted — the full ambiguity set, unfiltered by lookahead.
    /// Used by the stack-augmented exact parser, which must consider all
    /// tokenisations.
    pub fn all_match_ends(&self, input: &[u8], start: usize) -> Vec<usize> {
        let mut ends = Vec::new();
        if self.nullable {
            ends.push(start);
        }
        let mut candidates = self.first_mask.clone();
        let mut fired = vec![0u64; self.blocks];
        for (off, &b) in input[start..].iter().enumerate() {
            let mask = &self.byte_mask[b as usize];
            let mut any = 0u64;
            for ((f, c), m) in fired.iter_mut().zip(&candidates).zip(mask) {
                *f = c & m;
                any |= *f;
            }
            if any == 0 {
                break;
            }
            if (0..self.blocks).any(|k| fired[k] & self.last_mask[k] != 0) {
                ends.push(start + off + 1);
            }
            self.advance(&fired, &mut candidates);
        }
        ends
    }

    /// Run this automaton over `input[..end]` in reverse (last byte
    /// first) and return the longest match length. Pass the NFA of a
    /// [`Template::reversed`] automaton to recover a lexeme's *start*
    /// from its end position without copying the buffer.
    ///
    /// [`Template::reversed`]: crate::template::Template::reversed
    pub fn find_longest_rev(&self, input: &[u8], end: usize) -> Option<usize> {
        let mut best = if self.nullable { Some(0) } else { None };
        let mut candidates = self.first_mask.clone();
        let mut fired = vec![0u64; self.blocks];
        for (off, &b) in input[..end].iter().rev().enumerate() {
            let mask = &self.byte_mask[b as usize];
            let mut any = 0u64;
            for k in 0..self.blocks {
                fired[k] = candidates[k] & mask[k];
                any |= fired[k];
            }
            if any == 0 {
                break;
            }
            if (0..self.blocks).any(|k| fired[k] & self.last_mask[k] != 0) {
                best = Some(off + 1);
            }
            self.advance(&fired, &mut candidates);
        }
        best
    }

    #[inline]
    #[allow(clippy::needless_range_loop)] // k also derives bit positions
    fn advance(&self, fired: &Blocks, candidates: &mut Blocks) {
        candidates.iter_mut().for_each(|w| *w = 0);
        for k in 0..self.blocks {
            let mut word = fired[k];
            while word != 0 {
                let p = k * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                for (c, f) in candidates.iter_mut().zip(&self.follow_mask[p]) {
                    *c |= f;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn nfa(src: &str) -> Nfa {
        Nfa::from_template(&Template::build(&parse(src).unwrap()))
    }

    #[test]
    fn full_match_literal() {
        let n = nfa("<param>");
        assert!(n.is_full_match(b"<param>"));
        assert!(!n.is_full_match(b"<param"));
        assert!(!n.is_full_match(b"<params>"));
        assert!(!n.is_full_match(b""));
    }

    #[test]
    fn longest_match_repeat() {
        let n = nfa("[0-9]+");
        assert_eq!(n.find_longest_at(b"12345x", 0, MatchSemantics::GlobalLongest), Some(5));
        assert_eq!(n.find_longest_at(b"12345x", 2, MatchSemantics::GlobalLongest), Some(3));
        assert_eq!(n.find_longest_at(b"x123", 0, MatchSemantics::GlobalLongest), None);
    }

    #[test]
    fn hardware_matches_global_on_unambiguous_patterns() {
        let n = nfa("[a-z]+");
        for input in [&b"abc "[..], b"a", b"zz9", b"hello world"] {
            assert_eq!(
                n.find_longest_at(input, 0, MatchSemantics::GlobalLongest),
                n.find_longest_at(input, 0, MatchSemantics::HardwareLookahead),
                "input {input:?}"
            );
        }
    }

    #[test]
    fn hardware_asserts_once_per_longest_run() {
        // Figure 7: a+ on "aaab" asserts exactly once, at the end of the run.
        let n = nfa("a+");
        assert_eq!(n.hardware_ends(b"aaab", 0), vec![3]);
        assert_eq!(n.hardware_ends(b"aaa", 0), vec![3]);
        assert_eq!(n.hardware_ends(b"b", 0), Vec::<usize>::new());
    }

    #[test]
    fn hardware_may_assert_twice_on_prefix_ambiguity() {
        // ab|abc: the 'ab' branch's last position has empty continuation,
        // so the hardware asserts at length 2 even when 'abc' also
        // matches — the §3.3 "two or more tokenizers accept" case.
        let n = nfa("ab|abc");
        assert_eq!(n.hardware_ends(b"abc", 0), vec![2, 3]);
        assert_eq!(n.find_longest_at(b"abc", 0, MatchSemantics::GlobalLongest), Some(3));
        assert_eq!(n.find_longest_at(b"abc", 0, MatchSemantics::HardwareLookahead), Some(3));
    }

    #[test]
    fn double_pattern_hardware_lookahead() {
        let n = nfa(r"[+-]?[0-9]+\.[0-9]+");
        assert_eq!(n.hardware_ends(b"-12.5x", 0), vec![5]);
        // A trailing digit keeps the run alive: no assertion until it ends.
        assert_eq!(n.hardware_ends(b"-12.55", 0), vec![6]);
        assert!(n.is_full_match(b"3.14"));
        assert!(!n.is_full_match(b"3."));
    }

    #[test]
    fn empty_input_and_nullable() {
        let n = Nfa::from_template(&Template::build(&parse("a*").unwrap()));
        assert!(n.is_full_match(b""));
        assert_eq!(n.find_longest_at(b"", 0, MatchSemantics::GlobalLongest), Some(0));
        assert_eq!(n.find_longest_at(b"aa", 0, MatchSemantics::GlobalLongest), Some(2));
    }

    #[test]
    fn wide_pattern_multi_block() {
        // More than 64 positions to exercise multi-word bitsets.
        let long: String = "ab".repeat(40);
        let n = nfa(&long);
        let input = "ab".repeat(40);
        assert!(n.is_full_match(input.as_bytes()));
        assert!(!n.is_full_match(&input.as_bytes()[..79]));
        assert_eq!(n.len(), 80);
    }

    #[test]
    fn reverse_longest_recovers_start() {
        // Recover the start of "[0-9]+" lexemes from their end.
        let t = Template::build(&parse("[0-9]+").unwrap());
        let rev = Nfa::from_template(&t.reversed());
        let input = b"ab 1234 cd";
        // Lexeme "1234" ends at 7.
        assert_eq!(rev.find_longest_rev(input, 7), Some(4));
        // Lexeme "-42": sign is optional backwards too.
        let t = Template::build(&parse("[+-]?[0-9]+").unwrap());
        let rev = Nfa::from_template(&t.reversed());
        assert_eq!(rev.find_longest_rev(b"x-42", 4), Some(3));
        assert_eq!(rev.find_longest_rev(b"x-42", 1), None);
    }

    #[test]
    fn base64_class() {
        let n = nfa("[+/A-Za-z0-9]");
        assert!(n.is_full_match(b"+"));
        assert!(n.is_full_match(b"Q"));
        assert!(!n.is_full_match(b"="));
        assert!(!n.is_full_match(b"QQ"));
    }
}
