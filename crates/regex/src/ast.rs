//! Pattern syntax trees.
//!
//! The AST mirrors the regular-expression functions the paper's hardware
//! templates implement (Figure 6): sequencing, single-byte classes
//! (including `!`-complemented ones), one-or-none (`?`), one-or-more (`+`)
//! and zero-or-more (`*`), plus grouping and alternation.

use crate::classes::ByteSet;

/// A parsed regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string. Produced only for empty groups/branches.
    Empty,
    /// Matches one byte from the set (Figure 6a/6b primitive — a `!a`
    /// element parses directly into the complemented set).
    Class(ByteSet),
    /// Matches the concatenation of the parts (Figure 6a chains).
    Concat(Vec<Ast>),
    /// Matches any one of the branches.
    Alt(Vec<Ast>),
    /// `inner?` — one or none (Figure 6c).
    Optional(Box<Ast>),
    /// `inner+` (`min_zero == false`) or `inner*` (`min_zero == true`) —
    /// Figure 6d.
    Repeat {
        /// Repeated sub-pattern.
        inner: Box<Ast>,
        /// `true` for `*`, `false` for `+`.
        min_zero: bool,
    },
}

impl Ast {
    /// An AST matching exactly the given byte string.
    pub fn literal(bytes: &[u8]) -> Ast {
        match bytes.len() {
            0 => Ast::Empty,
            1 => Ast::Class(ByteSet::singleton(bytes[0])),
            _ => Ast::Concat(bytes.iter().map(|&b| Ast::Class(ByteSet::singleton(b))).collect()),
        }
    }

    /// If this AST is a fixed byte string, return it.
    pub fn as_literal(&self) -> Option<Vec<u8>> {
        match self {
            Ast::Empty => Some(Vec::new()),
            Ast::Class(s) => s.as_singleton().map(|b| vec![b]),
            Ast::Concat(parts) => {
                let mut out = Vec::with_capacity(parts.len());
                for p in parts {
                    out.extend(p.as_literal()?);
                }
                Some(out)
            }
            _ => None,
        }
    }

    /// Can this AST match the empty string?
    pub fn nullable(&self) -> bool {
        match self {
            Ast::Empty => true,
            Ast::Class(_) => false,
            Ast::Concat(parts) => parts.iter().all(Ast::nullable),
            Ast::Alt(branches) => branches.iter().any(Ast::nullable),
            Ast::Optional(_) => true,
            Ast::Repeat { min_zero, inner } => *min_zero || inner.nullable(),
        }
    }

    /// Number of character positions (leaf [`Ast::Class`] nodes). Each
    /// position becomes one pipeline register in the generated tokenizer,
    /// and one "pattern byte" in the paper's §4.3 accounting.
    pub fn position_count(&self) -> usize {
        match self {
            Ast::Empty => 0,
            Ast::Class(_) => 1,
            Ast::Concat(parts) => parts.iter().map(Ast::position_count).sum(),
            Ast::Alt(branches) => branches.iter().map(Ast::position_count).sum(),
            Ast::Optional(inner) => inner.position_count(),
            Ast::Repeat { inner, .. } => inner.position_count(),
        }
    }

    /// Union of all byte classes appearing in the pattern. The hardware
    /// generator uses this to decide which character decoders to emit.
    pub fn alphabet(&self) -> ByteSet {
        match self {
            Ast::Empty => ByteSet::EMPTY,
            Ast::Class(s) => *s,
            Ast::Concat(parts) | Ast::Alt(parts) => {
                parts.iter().fold(ByteSet::EMPTY, |acc, p| acc.union(p.alphabet()))
            }
            Ast::Optional(inner) | Ast::Repeat { inner, .. } => inner.alphabet(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_construction() {
        assert_eq!(Ast::literal(b""), Ast::Empty);
        assert_eq!(Ast::literal(b"a"), Ast::Class(ByteSet::singleton(b'a')));
        let ab = Ast::literal(b"ab");
        assert_eq!(ab.position_count(), 2);
        assert_eq!(ab.as_literal().unwrap(), b"ab");
    }

    #[test]
    fn nullable_rules() {
        assert!(Ast::Empty.nullable());
        assert!(!Ast::literal(b"x").nullable());
        assert!(Ast::Optional(Box::new(Ast::literal(b"x"))).nullable());
        assert!(Ast::Repeat { inner: Box::new(Ast::literal(b"x")), min_zero: true }.nullable());
        assert!(!Ast::Repeat { inner: Box::new(Ast::literal(b"x")), min_zero: false }.nullable());
        let alt = Ast::Alt(vec![Ast::literal(b"x"), Ast::Empty]);
        assert!(alt.nullable());
    }

    #[test]
    fn alphabet_union() {
        let a =
            Ast::Concat(vec![Ast::Class(ByteSet::digits()), Ast::Class(ByteSet::singleton(b'.'))]);
        let alpha = a.alphabet();
        assert!(alpha.contains(b'5'));
        assert!(alpha.contains(b'.'));
        assert!(!alpha.contains(b'a'));
    }

    #[test]
    fn non_literal_returns_none() {
        let a = Ast::Class(ByteSet::digits());
        assert!(a.as_literal().is_none());
    }
}
