//! XML-RPC message workload generator.
//!
//! Produces the §4 traffic: `methodCall` messages for the Figure 12
//! bank services (`deposit`, `withdraw`, `acctinfo`) and shopping
//! services (`buy`, `sell`, `price`), with recursive parameter values.
//! Seeded, so experiments are reproducible.
//!
//! Two generation modes matter for the evaluation:
//!
//! * [`MessageKind::Honest`] — the service name appears only in
//!   `<methodName>`.
//! * [`MessageKind::Adversarial`] — the method name is a *different*
//!   service, and the routed-on service name is smuggled inside a
//!   `<string>` parameter value. A context-blind matcher misroutes
//!   these; the token tagger does not (the paper's false-positive
//!   argument, §1/§3.5).

use rand::prelude::*;
use rand::rngs::StdRng;

/// Bank services routed to the bank port (Figure 12).
pub const BANK_SERVICES: [&str; 3] = ["deposit", "withdraw", "acctinfo"];
/// Shopping services routed to the shopping port (Figure 12).
pub const SHOP_SERVICES: [&str; 3] = ["buy", "sell", "price"];

/// What kind of message to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageKind {
    /// Service name only in `<methodName>`.
    Honest,
    /// Service name hidden in a string value; methodName is another
    /// service.
    Adversarial,
}

/// A generated message and its ground truth.
#[derive(Debug, Clone)]
pub struct Message {
    /// The XML-RPC bytes.
    pub bytes: Vec<u8>,
    /// The service actually requested (in `<methodName>`).
    pub method: String,
    /// A service name embedded in a value, if adversarial.
    pub decoy: Option<String>,
}

/// Seeded generator of XML-RPC messages.
#[derive(Debug)]
pub struct WorkloadGenerator {
    rng: StdRng,
    /// Include dateTime/base64 values (which a conventional
    /// longest-match lexer cannot tokenize — tagger-only territory).
    pub full_value_set: bool,
}

impl WorkloadGenerator {
    /// New generator with a seed.
    pub fn new(seed: u64) -> Self {
        WorkloadGenerator { rng: StdRng::seed_from_u64(seed), full_value_set: false }
    }

    /// Enable dateTime and base64 values.
    pub fn with_full_values(mut self) -> Self {
        self.full_value_set = true;
        self
    }

    /// All known services.
    pub fn services() -> Vec<&'static str> {
        BANK_SERVICES.iter().chain(SHOP_SERVICES.iter()).copied().collect()
    }

    /// Generate one message.
    pub fn message(&mut self, kind: MessageKind) -> Message {
        let services = Self::services();
        let method = (*services.choose(&mut self.rng).expect("nonempty")).to_owned();
        let decoy = match kind {
            MessageKind::Honest => None,
            MessageKind::Adversarial => {
                // Pick a decoy from the *other* port's services so a
                // misroute is observable.
                let other: Vec<&str> = if BANK_SERVICES.contains(&method.as_str()) {
                    SHOP_SERVICES.to_vec()
                } else {
                    BANK_SERVICES.to_vec()
                };
                Some((*other.choose(&mut self.rng).expect("nonempty")).to_owned())
            }
        };

        let mut s = String::new();
        s.push_str("<methodCall>");
        s.push_str(&format!("<methodName>{method}</methodName>"));
        s.push_str("<params>");
        let nparams = self.rng.random_range(1..4usize);
        for i in 0..nparams {
            s.push_str("<param>");
            if i == 0 {
                if let Some(d) = &decoy {
                    // The trap: a value that *contains* the decoy
                    // service name as its STRING content.
                    s.push_str(&format!("<string>{d}</string>"));
                    s.push_str("</param>");
                    continue;
                }
            }
            self.value(&mut s, 2);
            s.push_str("</param>");
        }
        s.push_str("</params>");
        s.push_str("</methodCall>");
        Message { bytes: s.into_bytes(), method, decoy }
    }

    /// Generate a batch of messages with a given adversarial fraction
    /// (0.0–1.0).
    pub fn batch(&mut self, count: usize, adversarial_fraction: f64) -> Vec<Message> {
        (0..count)
            .map(|_| {
                let kind = if self.rng.random_bool(adversarial_fraction.clamp(0.0, 1.0)) {
                    MessageKind::Adversarial
                } else {
                    MessageKind::Honest
                };
                self.message(kind)
            })
            .collect()
    }

    fn value(&mut self, s: &mut String, depth: usize) {
        let max = if self.full_value_set { 8 } else { 6 };
        let choice = if depth == 0 {
            self.rng.random_range(0..4) // scalars only at the leaves
        } else {
            self.rng.random_range(0..max)
        };
        match choice {
            0 => {
                let v: i32 = self.rng.random_range(-9999..10000);
                s.push_str(&format!("<i4>{v}</i4>"));
            }
            1 => {
                let v: i32 = self.rng.random_range(-99999..100000);
                s.push_str(&format!("<int>{v}</int>"));
            }
            2 => {
                let w = self.word();
                s.push_str(&format!("<string>{w}</string>"));
            }
            3 => {
                let a: i32 = self.rng.random_range(-999..1000);
                let b: u32 = self.rng.random_range(0..100);
                s.push_str(&format!("<double>{a}.{b:02}</double>"));
            }
            4 => {
                // struct with 1–2 members.
                s.push_str("<struct>");
                for _ in 0..self.rng.random_range(1..3usize) {
                    s.push_str("<member>");
                    let w = self.word();
                    s.push_str(&format!("<name>{w}</name>"));
                    self.value(s, depth - 1);
                    s.push_str("</member>");
                }
                s.push_str("</struct>");
            }
            5 => {
                s.push_str("<array><data>");
                for _ in 0..self.rng.random_range(0..3usize) {
                    self.value(s, depth - 1);
                }
                s.push_str("</data></array>");
            }
            6 => {
                let y = self.rng.random_range(1990..2030);
                let mo = self.rng.random_range(1..13u32);
                let d = self.rng.random_range(1..29u32);
                let h = self.rng.random_range(0..24u32);
                let mi = self.rng.random_range(0..60u32);
                let sec = self.rng.random_range(0..60u32);
                s.push_str(&format!(
                    "<dateTime.iso8601>{y:04}{mo:02}{d:02}T{h:02}:{mi:02}:{sec:02}</dateTime.iso8601>"
                ));
            }
            _ => {
                let w = self.word();
                s.push_str(&format!("<base64>{w}</base64>"));
            }
        }
    }

    fn word(&mut self) -> String {
        let len = self.rng.random_range(3..10usize);
        (0..len)
            .map(|_| {
                let c = self.rng.random_range(0..36u32);
                if c < 26 {
                    (b'a' + c as u8) as char
                } else {
                    (b'0' + (c - 26) as u8) as char
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = WorkloadGenerator::new(1);
        let mut b = WorkloadGenerator::new(1);
        for _ in 0..10 {
            assert_eq!(a.message(MessageKind::Honest).bytes, b.message(MessageKind::Honest).bytes);
        }
        let mut c = WorkloadGenerator::new(2);
        assert_ne!(a.message(MessageKind::Honest).bytes, c.message(MessageKind::Honest).bytes);
    }

    #[test]
    fn honest_message_shape() {
        let mut g = WorkloadGenerator::new(3);
        let m = g.message(MessageKind::Honest);
        let text = String::from_utf8(m.bytes.clone()).unwrap();
        assert!(text.starts_with("<methodCall><methodName>"));
        assert!(text.ends_with("</methodCall>"));
        assert!(text.contains(&format!("<methodName>{}</methodName>", m.method)));
        assert!(m.decoy.is_none());
    }

    #[test]
    fn adversarial_contains_decoy_in_value() {
        let mut g = WorkloadGenerator::new(4);
        for _ in 0..20 {
            let m = g.message(MessageKind::Adversarial);
            let text = String::from_utf8(m.bytes.clone()).unwrap();
            let decoy = m.decoy.as_ref().unwrap();
            assert!(text.contains(&format!("<string>{decoy}</string>")));
            assert_ne!(decoy, &m.method);
            // Decoy and method target different ports.
            let method_is_bank = BANK_SERVICES.contains(&m.method.as_str());
            let decoy_is_bank = BANK_SERVICES.contains(&decoy.as_str());
            assert_ne!(method_is_bank, decoy_is_bank);
        }
    }

    #[test]
    fn batch_fraction() {
        let mut g = WorkloadGenerator::new(5);
        let batch = g.batch(100, 0.5);
        let adv = batch.iter().filter(|m| m.decoy.is_some()).count();
        assert!((20..=80).contains(&adv), "got {adv}");
        assert_eq!(batch.len(), 100);
        let all_honest = g.batch(10, 0.0);
        assert!(all_honest.iter().all(|m| m.decoy.is_none()));
    }

    #[test]
    fn full_value_set_eventually_emits_datetime_and_base64() {
        let mut g = WorkloadGenerator::new(6).with_full_values();
        let mut saw_dt = false;
        let mut saw_b64 = false;
        for _ in 0..200 {
            let m = g.message(MessageKind::Honest);
            let text = String::from_utf8(m.bytes).unwrap();
            saw_dt |= text.contains("<dateTime.iso8601>");
            saw_b64 |= text.contains("<base64>");
        }
        assert!(saw_dt && saw_b64);
    }
}
