//! The Figure 12 content-based router.
//!
//! "As messages pass through the system, the CFG parser tagger asserts a
//! signal associated with a service when that service is found in a
//! message. This signal is then used to control a switch which routes
//! the message to the appropriate destination." The routing key is the
//! `STRING` token **in its `methodName` context** — the context
//! duplication of §3.2 is what lets the router ignore identical strings
//! inside parameter values.

use crate::workload::{BANK_SERVICES, SHOP_SERVICES};
use cfg_grammar::TokenId;
use cfg_obs::{Metrics, Stat, TraceEvent};
use cfg_tagger::{Backend, TagEvent, TokenTagger};

/// Output ports of the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// The bank server.
    Bank,
    /// The shopping server.
    Shop,
    /// No known service found in `<methodName>`.
    Unknown,
}

/// Precomputed routing tables for a compiled tagger.
#[derive(Debug, Clone)]
pub struct RouterTables {
    /// The compiled token id of STRING in the methodName context.
    method_string: TokenId,
}

impl RouterTables {
    /// Locate the `STRING`-in-`methodName` token in a compiled tagger.
    /// Requires the tagger to be compiled with context duplication (the
    /// default).
    pub fn new(tagger: &TokenTagger) -> Option<RouterTables> {
        let g = tagger.grammar();
        let idx = g.tokens().iter().position(|t| {
            t.name.starts_with("STRING")
                && t.context.as_ref().is_some_and(|c| c.production == "methodName")
        })?;
        Some(RouterTables { method_string: TokenId(idx as u32) })
    }

    /// The token id the router listens on.
    pub fn method_string_token(&self) -> TokenId {
        self.method_string
    }
}

/// The router back-end: collects one routing decision per message.
#[derive(Debug)]
pub struct Router {
    tables: RouterTables,
    /// Decisions in stream order (service name, port).
    pub decisions: Vec<(String, Port)>,
    /// Byte offset (exclusive end of the deciding lexeme) at which the
    /// first routing decision became available — the paper's selling
    /// point is how early in the stream this lands.
    pub first_decision_end: Option<usize>,
    metrics: Metrics,
}

impl Router {
    /// New router over precomputed tables.
    pub fn new(tables: RouterTables) -> Router {
        Router { tables, decisions: Vec::new(), first_decision_end: None, metrics: Metrics::off() }
    }

    /// Attach an observability handle (builder style).
    pub fn with_metrics(mut self, metrics: Metrics) -> Router {
        self.metrics = metrics;
        self
    }

    /// Port for a service name.
    pub fn port_for(service: &str) -> Port {
        if BANK_SERVICES.contains(&service) {
            Port::Bank
        } else if SHOP_SERVICES.contains(&service) {
            Port::Shop
        } else {
            Port::Unknown
        }
    }

    /// Route one complete message; returns the selected port.
    ///
    /// Records per-port decision counters, the `route_latency_bytes`
    /// histogram (bytes into the message at which the decision landed),
    /// and [`Stat::MalformedRejected`] for messages yielding no
    /// `methodName` at all — via the tagger's metrics handle.
    pub fn route(tagger: &TokenTagger, tables: &RouterTables, message: &[u8]) -> Port {
        let metrics = tagger.options().metrics.clone();
        let mut r = Router::new(tables.clone()).with_metrics(metrics.clone());
        tagger.process(message, &mut r);
        match r.decisions.first() {
            Some((_, port)) => {
                let stat = match port {
                    Port::Bank => Stat::RouteBank,
                    Port::Shop => Stat::RouteShop,
                    Port::Unknown => Stat::RouteUnknown,
                };
                metrics.add(stat, 1);
                if let Some(end) = r.first_decision_end {
                    metrics.observe("route_latency_bytes", end as u64);
                }
                *port
            }
            None => {
                // No methodName token fired: the stream does not conform
                // to the XML-RPC grammar as far as routing is concerned.
                metrics.add(Stat::MalformedRejected, 1);
                metrics
                    .trace(|| TraceEvent::new("malformed_rejected").field("bytes", message.len()));
                Port::Unknown
            }
        }
    }
}

impl Backend for Router {
    fn on_event(&mut self, event: TagEvent, _tagger: &TokenTagger, input: &[u8]) {
        if event.token == self.tables.method_string {
            let service = String::from_utf8_lossy(event.lexeme(input)).into_owned();
            let port = Self::port_for(&service);
            if self.first_decision_end.is_none() {
                self.first_decision_end = Some(event.end);
            }
            if self.metrics.is_enabled() {
                self.metrics.trace(|| {
                    TraceEvent::new("route")
                        .field("service", service.as_str())
                        .field("port", format!("{port:?}"))
                        .field("at", event.end)
                });
            }
            self.decisions.push((service, port));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::xmlrpc_grammar;
    use crate::workload::{MessageKind, WorkloadGenerator};
    use cfg_tagger::TaggerOptions;

    fn tagger() -> TokenTagger {
        TokenTagger::compile(&xmlrpc_grammar(), TaggerOptions::default()).unwrap()
    }

    #[test]
    fn routes_bank_and_shop() {
        let t = tagger();
        let tables = RouterTables::new(&t).unwrap();
        let bank = b"<methodCall><methodName>deposit</methodName><params><param><i4>100</i4></param></params></methodCall>";
        let shop = b"<methodCall><methodName>buy</methodName><params><param><string>book</string></param></params></methodCall>";
        assert_eq!(Router::route(&t, &tables, bank), Port::Bank);
        assert_eq!(Router::route(&t, &tables, shop), Port::Shop);
    }

    #[test]
    fn unknown_service_unrouted() {
        let t = tagger();
        let tables = RouterTables::new(&t).unwrap();
        let msg = b"<methodCall><methodName>frobnicate</methodName><params><param><i4>1</i4></param></params></methodCall>";
        assert_eq!(Router::route(&t, &tables, msg), Port::Unknown);
    }

    #[test]
    fn adversarial_messages_route_by_method_not_decoy() {
        let t = tagger();
        let tables = RouterTables::new(&t).unwrap();
        let mut gen = WorkloadGenerator::new(11);
        for _ in 0..25 {
            let m = gen.message(MessageKind::Adversarial);
            let port = Router::route(&t, &tables, &m.bytes);
            assert_eq!(
                port,
                Router::port_for(&m.method),
                "message {:?} routed to decoy!",
                String::from_utf8_lossy(&m.bytes)
            );
        }
    }

    #[test]
    fn honest_workload_routes_correctly() {
        let t = tagger();
        let tables = RouterTables::new(&t).unwrap();
        let mut gen = WorkloadGenerator::new(12);
        for _ in 0..25 {
            let m = gen.message(MessageKind::Honest);
            assert_eq!(Router::route(&t, &tables, &m.bytes), Router::port_for(&m.method));
        }
    }

    #[test]
    fn full_value_set_messages_still_route() {
        // dateTime/base64 values break a conventional lexer, not the
        // tagger.
        let t = tagger();
        let tables = RouterTables::new(&t).unwrap();
        let mut gen = WorkloadGenerator::new(13).with_full_values();
        for _ in 0..25 {
            let m = gen.message(MessageKind::Honest);
            assert_eq!(
                Router::route(&t, &tables, &m.bytes),
                Router::port_for(&m.method),
                "message {:?}",
                String::from_utf8_lossy(&m.bytes)
            );
        }
    }

    #[test]
    fn route_decisions_are_counted() {
        use cfg_obs::{Metrics, Stat, StatsSink};
        let sink = std::sync::Arc::new(StatsSink::new());
        let t = TokenTagger::compile(
            &xmlrpc_grammar(),
            cfg_tagger::TaggerOptions::builder().metrics(Metrics::new(sink.clone())).build(),
        )
        .unwrap();
        let tables = RouterTables::new(&t).unwrap();
        let bank = b"<methodCall><methodName>deposit</methodName><params><param><i4>1</i4></param></params></methodCall>";
        let shop = b"<methodCall><methodName>buy</methodName><params><param><i4>1</i4></param></params></methodCall>";
        let junk = b"this is not xml-rpc at all";
        assert_eq!(Router::route(&t, &tables, bank), Port::Bank);
        assert_eq!(Router::route(&t, &tables, bank), Port::Bank);
        assert_eq!(Router::route(&t, &tables, shop), Port::Shop);
        assert_eq!(Router::route(&t, &tables, junk), Port::Unknown);
        assert_eq!(sink.get(Stat::RouteBank), 2);
        assert_eq!(sink.get(Stat::RouteShop), 1);
        assert_eq!(sink.get(Stat::RouteUnknown), 0);
        assert_eq!(sink.get(Stat::MalformedRejected), 1);
        // The latency histogram observed one entry per routed message,
        // each well before the end of the message.
        let snap = sink.snapshot();
        let (_, hist) = snap
            .histograms
            .iter()
            .find(|(name, _)| *name == "route_latency_bytes")
            .expect("route latency histogram recorded");
        assert_eq!(hist.count, 3);
        assert!((hist.max as usize) < bank.len());
    }

    #[test]
    fn tables_require_duplication() {
        let t = TokenTagger::compile(
            &xmlrpc_grammar(),
            TaggerOptions { duplicate_contexts: false, ..Default::default() },
        )
        .unwrap();
        assert!(RouterTables::new(&t).is_none());
    }
}
