//! # cfg-xmlrpc — the paper's §4 application
//!
//! "XML-RPC allows remote procedure calls to be made between systems
//! over the Internet … it is desirable to have a system that can route
//! XML-RPC messages based on the service requested in the content of
//! the message." This crate supplies:
//!
//! * [`grammar`] — the Figure 14 Yacc-style grammar for XML-RPC
//!   (≈45 tokens, ≈300 bytes of pattern data, §4.3), with the paper's
//!   two small typos repaired and documented;
//! * [`workload`] — a seeded generator of valid XML-RPC `methodCall`
//!   messages (bank and shopping services, recursive values, structs,
//!   arrays, dateTime, base64) plus *adversarial* messages that embed
//!   service names inside string values — the naive matcher's trap;
//! * [`router`] — the Figure 12 content-based router: a
//!   [`cfg_tagger::Backend`] that watches the `STRING` token in its
//!   `methodName` context and switches each message to the bank or
//!   shopping port.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grammar;
pub mod router;
pub mod workload;

pub use grammar::xmlrpc_grammar;
pub use router::{Port, Router, RouterTables};
pub use workload::{MessageKind, WorkloadGenerator};
