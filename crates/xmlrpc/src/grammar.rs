//! The Figure 14 grammar for XML-RPC.
//!
//! Reproduced from the paper with two repairs, both documented in
//! DESIGN.md:
//!
//! 1. `DOUBLE` is written `[+-]?[0-9]+.[0-9]+` in the paper; in Lex `.`
//!    is "any byte but newline", so the intended decimal point is
//!    escaped here (`\.`).
//! 2. The paper's `struct` rule references `member_list`, which is never
//!    defined (its `member` rule matches the DTD's `member+` content);
//!    we add the obvious right-recursive list. Similarly `data` is given
//!    the DTD's `value*` content instead of the single optional value in
//!    the figure.
//!
//! §4.3 sizes this grammar at "45 tokens and approximately 300 bytes of
//! pattern data"; tests pin our counts to that.

use cfg_grammar::Grammar;

/// The grammar text (see module docs for deviations from Figure 14).
pub const XMLRPC_GRAMMAR_TEXT: &str = r#"
STRING            [a-zA-Z0-9]+
INT               [+-]?[0-9]+
DOUBLE            [+-]?[0-9]+\.[0-9]+
YEAR              [0-9][0-9][0-9][0-9]
MONTH             [0-9][0-9]
DAY               [0-9][0-9]
HOUR              [0-9][0-9]
MIN               [0-9][0-9]
SEC               [0-9][0-9]
BASE64            [+/A-Za-z0-9]+
%%
methodCall: "<methodCall>" methodName params "</methodCall>";
methodName: "<methodName>" STRING "</methodName>";
params:     "<params>" param "</params>";
param:      | "<param>" value "</param>" param;
value:      i4 | int | string | dateTime | double
            | base64 | struct | array;
i4:         "<i4>" INT "</i4>";
int:        "<int>" INT "</int>";
string:     "<string>" STRING "</string>";
dateTime:   "<dateTime.iso8601>" YEAR MONTH DAY
            'T' HOUR ':' MIN ':' SEC "</dateTime.iso8601>";
double:     "<double>" DOUBLE "</double>";
base64:     "<base64>" BASE64 "</base64>";
struct:     "<struct>" member_list "</struct>";
member_list: member member_tail;
member_tail: | member member_tail;
member:     "<member>" name value "</member>";
name:       "<name>" STRING "</name>";
array:      "<array>" data "</array>";
data:       "<data>" value_list "</data>";
value_list: | value value_list;
%%
"#;

/// Parse the XML-RPC grammar.
pub fn xmlrpc_grammar() -> Grammar {
    Grammar::parse(XMLRPC_GRAMMAR_TEXT).expect("the XML-RPC grammar parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfg_grammar::transform::duplicate_multi_context_tokens;

    #[test]
    fn token_count_matches_paper() {
        // §4.3: "relatively small with only 45 tokens". Our repaired
        // grammar counts 10 named regex tokens + the tag/char literals.
        let g = xmlrpc_grammar();
        let n = g.tokens().len();
        assert!((40..=48).contains(&n), "expected ≈45 tokens as in the paper, got {n}");
    }

    #[test]
    fn pattern_bytes_match_paper() {
        // §4.3: "approximately 300 bytes of pattern data".
        let g = xmlrpc_grammar();
        let bytes = g.pattern_bytes();
        assert!(
            (270..=320).contains(&bytes),
            "expected ≈300 pattern bytes as in the paper, got {bytes}"
        );
    }

    #[test]
    fn analysis_runs_and_start_set_is_method_call() {
        let g = xmlrpc_grammar();
        let a = g.analyze();
        let start: Vec<&str> = a.start_set.iter().map(|t| g.token_name(t)).collect();
        assert_eq!(start, ["<methodCall>"]);
        // FOLLOW(<methodName>) = {STRING}.
        let mn = g.token_by_name("<methodName>").unwrap();
        let f: Vec<&str> = a.follow_of(mn).iter().map(|t| g.token_name(t)).collect();
        assert_eq!(f, ["STRING"]);
    }

    #[test]
    fn duplication_splits_string_contexts() {
        let g = xmlrpc_grammar();
        let d = duplicate_multi_context_tokens(&g);
        // STRING occurs in methodName, string and name → 3 instances.
        let strings: Vec<&str> = d
            .tokens()
            .iter()
            .map(|t| t.name.as_str())
            .filter(|n| n.starts_with("STRING"))
            .collect();
        assert_eq!(strings.len(), 3);
        let contexts: Vec<&str> = d
            .tokens()
            .iter()
            .filter(|t| t.name.starts_with("STRING"))
            .map(|t| t.context.as_ref().unwrap().production.as_str())
            .collect();
        assert!(contexts.contains(&"methodName"));
        assert!(contexts.contains(&"string"));
        assert!(contexts.contains(&"name"));
    }

    #[test]
    fn grammar_is_ll1_after_repair() {
        // The repaired grammar drives the LL(1) baseline, which the
        // router tests use as ground truth.
        let g = xmlrpc_grammar();
        cfg_baseline_check(&g);
    }

    // Local LL(1) sanity without a cyclic dev-dependency on
    // cfg-baseline: the parse table has no conflicts iff for each
    // nonterminal the FIRST sets of its alternatives are disjoint
    // (plus FOLLOW-disjointness for the nullable alternative).
    fn cfg_baseline_check(g: &Grammar) {
        let a = g.analyze();
        for nt in 0..g.nonterminals().len() {
            let prods: Vec<_> = g.productions().iter().filter(|p| p.lhs.index() == nt).collect();
            let mut seen = cfg_grammar::TokenSet::new(g.tokens().len());
            for p in prods {
                let mut first = cfg_grammar::TokenSet::new(g.tokens().len());
                let mut nullable = true;
                for s in &p.rhs {
                    match s {
                        cfg_grammar::Symbol::T(t) => {
                            first.insert(*t);
                            nullable = false;
                        }
                        cfg_grammar::Symbol::Nt(n) => {
                            first.union_with(&a.first[n.index()]);
                            if !a.nullable[n.index()] {
                                nullable = false;
                            }
                        }
                    }
                    if !nullable {
                        break;
                    }
                }
                if nullable {
                    first.union_with(&a.follow_nt[nt]);
                }
                for t in first.iter() {
                    assert!(
                        !seen.contains(t),
                        "LL(1) conflict at {} on {}",
                        g.nonterminals()[nt],
                        g.token_name(t)
                    );
                    seen.insert(t);
                }
            }
        }
    }
}
