//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest's API that the workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! [`prop_oneof!`], [`Just`], `any::<T>()`, integer-range and
//! `&str`-regex strategies, `prop::collection::vec`, tuple strategies,
//! and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs verbatim (every
//!   generated value is `Debug`-printed in the failure message instead).
//! * **No persistence** — `.proptest-regressions` files are ignored.
//! * The RNG stream differs, so case sequences differ from upstream;
//!   tests must hold for *all* inputs anyway.

#![forbid(unsafe_code)]

/// Test-runner types: configuration, RNG, and failure plumbing.
pub mod test_runner {
    use rand::prelude::*;

    /// Per-block configuration (subset: case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config overriding only the case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure with message.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => f.write_str(m),
            }
        }
    }

    /// Deterministic per-test RNG (name-seeded xoshiro via the vendored
    /// `rand`).
    #[derive(Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seed from a test identifier and case index so every test gets
        /// a stable, independent stream.
        pub fn deterministic(name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)))
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw below `n` (> 0).
        pub fn below(&mut self, n: u64) -> u64 {
            self.0.random_range(0..n)
        }
    }
}

/// Strategies: value generators for property inputs.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T: std::fmt::Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V: std::fmt::Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: std::fmt::Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V: std::fmt::Debug> Union<V> {
        /// Build from the alternatives (nonempty).
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V: std::fmt::Debug> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
    }

    /// `&str` regex strategies — minimal: `\PC{lo,hi}` (printable,
    /// non-control chars of bounded length) plus a literal fallback.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_pc_bounds(self).unwrap_or((0, 16));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| {
                    // Mostly printable ASCII, sprinkled with multibyte
                    // chars to stress byte-oriented parsers.
                    match rng.below(12) {
                        0 => 'é',
                        1 => '∀',
                        2 => '日',
                        _ => (0x20 + rng.below(0x5f) as u8) as char,
                    }
                })
                .collect()
        }
    }

    /// Parse the `\PC{lo,hi}` form; `None` for anything else.
    fn parse_pc_bounds(pat: &str) -> Option<(usize, usize)> {
        let rest = pat.strip_prefix("\\PC{")?.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 != 0
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// An arbitrary value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Acceptable size arguments for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Vector-of-`element` strategy.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The conventional glob-import module.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules (mirror of proptest's `prelude::prop`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property assertion; fails the current case (no panic) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// The property-test block macro. Each contained `fn` runs its body for
/// `cases` random inputs drawn from the argument strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Internal: expand each test fn inside a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let test_id = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(test_id, case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:\n{}",
                        case + 1, config.cases, e, inputs
                    );
                }
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tri {
        A,
        B,
        C,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_any(n in 3usize..9, x in any::<u16>(), signed in -5i32..5) {
            prop_assert!((3..9).contains(&n));
            prop_assert!(u32::from(x) <= 0xFFFF);
            prop_assert!((-5..5).contains(&signed));
        }

        #[test]
        fn vec_and_oneof(
            v in prop::collection::vec(prop_oneof![Just(Tri::A), Just(Tri::B), Just(Tri::C)], 0..8),
            fixed in prop::collection::vec(any::<u8>(), 4),
        ) {
            prop_assert!(v.len() < 8);
            prop_assert_eq!(fixed.len(), 4);
        }

        #[test]
        fn map_and_tuples(s in (Just("x"), 1usize..4).prop_map(|(a, n)| a.repeat(n))) {
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert_ne!(s.as_str(), "");
        }

        #[test]
        fn str_regex_strategy(s in "\\PC{0,24}") {
            prop_assert!(s.chars().count() <= 24);
            prop_assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::deterministic("t", 1);
        let mut b = TestRng::deterministic("t", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("t", 2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(2))]
            #[allow(dead_code)]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("proptest case"), "msg: {msg}");
        assert!(msg.contains("x ="), "msg: {msg}");
    }
}
