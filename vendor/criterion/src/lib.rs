//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the group/bench API subset the workspace's benches use and
//! measures with plain wall-clock timing: adaptive warm-up to pick an
//! iteration batch, then `sample_size` timed batches, reporting the
//! median ns/iter (and derived throughput when one is set). No
//! statistics beyond that, no plots, no baselines on disk.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier with a parameter, e.g. `generate/4`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name}");
        BenchmarkGroup { _criterion: self, name, throughput: None, sample_size: 20 }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), None, 20, f);
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set how many timed batches to take (min 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        name: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.throughput, self.sample_size, f);
        self
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (reports are emitted eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure; call [`Bencher::iter`] with the body to time.
#[derive(Debug)]
pub struct Bencher {
    batch: u64,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, running it in batches sized during warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: grow the batch until one batch costs >= 10 ms (or the
        // batch is already very large for ultra-cheap bodies).
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(10) || batch >= 1 << 22 {
                break;
            }
            batch *= 2;
        }
        self.batch = batch;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher { batch: 1, sample_size, samples: Vec::with_capacity(sample_size) };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("{label:<44} (no samples: Bencher::iter never called)");
        return;
    }
    let mut per_iter: Vec<f64> =
        b.samples.iter().map(|d| d.as_nanos() as f64 / b.batch as f64).collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let mut line = format!("{label:<44} {median:>12.1} ns/iter");
    if let Some(t) = throughput {
        match t {
            Throughput::Bytes(n) => {
                let gib = n as f64 / median * 1e9 / (1024.0 * 1024.0 * 1024.0);
                line.push_str(&format!("  {gib:>8.3} GiB/s"));
            }
            Throughput::Elements(n) => {
                let meps = n as f64 / median * 1e9 / 1e6;
                line.push_str(&format!("  {meps:>8.3} Melem/s"));
            }
        }
    }
    eprintln!("{line}");
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024)).sample_size(5);
        let mut runs = 0u64;
        group.bench_function("sum", |b| {
            b.iter(|| {
                runs += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| b.iter(|| n * 2));
        group.finish();
        assert!(runs > 0);
    }
}
