//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the subset of the `rand` 0.9/0.10 API the
//! workspace uses: [`StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods (`random`, `random_bool`,
//! `random_range`), and the slice helpers (`choose`, `shuffle`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and deterministic for a given seed, which is all
//! the workspace's seeded tests and workload generators require. It is
//! **not** the same stream as the real `StdRng` (ChaCha12); nothing in
//! the repo depends on specific stream values, only on determinism.

#![forbid(unsafe_code)]

/// Random number generators (mirror of `rand::rngs`).
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng {
    use crate::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = rotl(s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as the real rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }
}

pub use std_rng::StdRng;

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::random`].
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 != 0
    }
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges usable with [`Rng::random_range`]. Generic over the element
/// type so the target type drives literal inference, as in real rand
/// (`let b: u32 = rng.random_range(0..100)`).
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Widening-multiply rejection sampling (Lemire); the rejection loop
    // terminates almost immediately for every n used in this workspace.
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n || lo >= (u64::MAX - n + 1) % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi - lo) as u64 + 1;
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + uniform_below(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i64 - lo as i64) as u64 + 1;
                (lo as i64 + uniform_below(rng, span) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64);

/// Extension methods over any [`RngCore`] (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to [0, 1]).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.random::<f64>()) < p
    }

    /// A uniformly random value from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random element selection from slices (mirror of `IndexedRandom`).
pub trait IndexedRandom {
    /// The element type.
    type Item;
    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> IndexedRandom for [T] {
    type Item = T;
    #[inline]
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}

/// In-place slice shuffling (mirror of `SliceRandom`).
pub trait SliceRandom {
    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }
}

/// The conventional glob-import module.
pub mod prelude {
    pub use crate::{IndexedRandom, Rng, RngCore, SeedableRng, SliceRandom, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i32 = rng.random_range(-9999..10000);
            assert!((-9999..10000).contains(&x));
            let y: usize = rng.random_range(1..4);
            assert!((1..4).contains(&y));
            let z: u32 = rng.random_range(0..36);
            assert!(z < 36);
        }
        // Both endpoints of a small range are reachable.
        let mut lo = false;
        let mut hi = false;
        for _ in 0..200 {
            match rng.random_range(0..2u32) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50 elements almost surely permute");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
