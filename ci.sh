#!/usr/bin/env bash
# Local/CI gate for the workspace. Gating steps, in order:
#
#   1. cargo fmt --check        -- repo is rustfmt-clean (see rustfmt.toml)
#   2. cargo clippy -D warnings -- all targets, all crates (vendored stubs too)
#   3. dead-code hygiene        -- no #[allow(dead_code)] in the obs crates
#   4. tier-1 verify            -- release build + root-package tests
#   5. exporter integration     -- cfg-obs-http socket-level scrape tests
#   6. probe layer & scope      -- engine probe counters, scope CLI, and
#                                  the serve->scope->trigger round trip
#   7. bit-parallel kernel      -- bitset engine tests, the wide-step
#                                  simd front end, shard pool, and the
#                                  four-engine agreement property
#   8. ingest server            -- cfg-server unit + integration tests
#                                  (both io-models: thread-per-conn and
#                                  the epoll reactor), the Engine trait
#                                  suite, and the fault-injection chaos
#                                  test
#   9. span tracing & SLO       -- cfg-obs span/SLO suites, the slo CLI,
#                                  and the end-to-end span_trace test
#  10. saturation telemetry     -- utilization time series, sampling
#                                  profiler, shards CLI, and the
#                                  end-to-end Little's-law test
#  11. shadow audit             -- audit bank/ring suites, frame-codec
#                                  chunking properties, audit CLI, and
#                                  the end-to-end seeded-fault test
#  12. full workspace tests     -- every crate's suites
#
# Then six NON-GATING steps: the observability-overhead bench (engine
# path, simd included, + traced/audited-server path), the
# engine-throughput bench (scalar/bit rows plus the per-engine simd
# row, grouped by bench_diff into independent series), the
# ingest-server loop bench (with the stage-attribution table) under
# both io-models, the false-positive precision experiment, and
# bench_diff over bench_results/ histories. Timing on shared machines
# is too noisy to fail CI on, so their verdicts are printed
# (bench_diff flags >10% regressions, and warns when a row's own
# rep-to-rep spread exceeds 10%) but never change the exit code.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> no allow(dead_code) in crates/obs or crates/obs-http"
if grep -rn "allow(dead_code)" crates/obs crates/obs-http --include='*.rs'; then
    echo "ci.sh: allow(dead_code) is banned in the obs crates -- delete the code or wire it up" >&2
    exit 1
fi

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> exporter integration: cargo test -q -p cfg-obs-http"
cargo test -q -p cfg-obs-http

echo "==> probe layer: cfg-obs probe/trigger, cfg-tagger probes, scope CLI"
cargo test -q -p cfg-obs probe
cargo test -q -p cfg-obs trigger
cargo test -q -p cfg-tagger probes
cargo test -q -p cfg-cli scope

echo "==> circuit scope round trip: cargo test -q --test circuit_scope"
cargo test -q --test circuit_scope

echo "==> bit-parallel kernel: bitset tables/engine, simd front end, shard pool, engine agreement"
cargo test -q -p cfg-tagger bitset
cargo test -q -p cfg-tagger bitset_wide
cargo test -q -p cfg-tagger shard
cargo test -q --test properties bitset_equals_scalar_gate_and_simd

echo "==> ingest server: cfg-server suites, Engine trait, chaos test"
cargo test -q -p cfg-server
cargo test -q -p cfg-tagger engine
cargo test -q --test chaos_server

echo "==> epoll reactor: event-loop internals, conn state machine, reactor ingest"
cargo test -q -p cfg-server reactor
cargo test -q -p cfg-server conn

echo "==> span tracing & SLO: cfg-obs span/slo, slo CLI, end-to-end trace test"
cargo test -q -p cfg-obs span
cargo test -q -p cfg-obs slo
cargo test -q -p cfg-cli slo
cargo test -q --test span_trace

echo "==> saturation telemetry: time series, profiler, shards CLI, end-to-end test"
cargo test -q -p cfg-obs timeseries
cargo test -q -p cfg-obs profile
cargo test -q -p cfg-cli shards
cargo test -q --test saturation

echo "==> shadow audit: audit bank/ring, chunking properties, audit CLI, end-to-end test"
cargo test -q -p cfg-obs audit
cargo test -q -p cfg-server audit
cargo test -q -p cfg-server chunking
cargo test -q -p cfg-cli audit
cargo test -q --test shadow_audit

echo "==> full workspace tests"
cargo test --workspace -q

echo "==> obs overhead bench (non-gating)"
cargo run -q --release -p cfg-bench --bin obs_overhead || true

echo "==> engine throughput bench (non-gating)"
cargo run -q --release -p cfg-bench --bin fast_throughput || true

echo "==> ingest server loop bench (non-gating)"
cargo run -q --release -p cfg-bench --bin server_loop || true

echo "==> ingest server loop bench, reactor io-model (non-gating)"
cargo run -q --release -p cfg-bench --bin server_loop -- --io-model reactor || true

echo "==> false-positive precision experiment (non-gating)"
cargo run -q --release -p cfg-bench --bin false_positives || true

echo "==> bench_diff vs previous run (non-gating)"
cargo run -q --release -p cfg-bench --bin bench_diff || true

echo "==> ci.sh: all gating steps passed"
