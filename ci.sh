#!/usr/bin/env bash
# Local/CI gate for the workspace. Gating steps, in order:
#
#   1. cargo fmt --check        -- repo is rustfmt-clean (see rustfmt.toml)
#   2. cargo clippy -D warnings -- all targets, all crates (vendored stubs too)
#   3. tier-1 verify            -- release build + root-package tests
#   4. full workspace tests     -- every crate's suites
#
# Then one NON-GATING step: the observability-overhead bench. Timing on
# shared machines is too noisy to fail CI on, so its verdict is printed
# (and written to bench_results/obs_overhead.json) but never changes the
# exit code.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> full workspace tests"
cargo test --workspace -q

echo "==> obs overhead bench (non-gating)"
cargo run -q --release -p cfg-bench --bin obs_overhead || true

echo "==> ci.sh: all gating steps passed"
