//! Integration tests pinning the paper's in-text claims and small
//! figures, via the public API only.

use cfg_token_tagger::fpga::Device;
use cfg_token_tagger::grammar::{builtin, transform, Grammar, TokenId};
use cfg_token_tagger::hwgen::control::wiring_edges;
use cfg_token_tagger::hwgen::generate::{generate, EncoderKind, GeneratorOptions};
use cfg_token_tagger::netlist::MappedNetlist;
use cfg_token_tagger::xmlrpc::xmlrpc_grammar;

/// Figure 10: the FOLLOW table of the if-then-else grammar.
#[test]
fn figure10_follow_table() {
    let g = builtin::if_then_else();
    let a = g.analyze();
    let follow = |tok: &str| -> Vec<String> {
        let t = g.token_by_name(tok).unwrap();
        let mut v: Vec<String> =
            a.follow_of(t).iter().map(|f| g.token_name(f).to_owned()).collect();
        if a.can_end[t.index()] {
            v.push("ε".to_owned());
        }
        v.sort();
        v
    };
    assert_eq!(follow("if"), ["false", "true"]);
    assert_eq!(follow("then"), ["go", "if", "stop"]);
    assert_eq!(follow("else"), ["go", "if", "stop"]);
    assert_eq!(follow("go"), ["else", "ε"]);
    assert_eq!(follow("stop"), ["else", "ε"]);
    assert_eq!(follow("true"), ["then"]);
    assert_eq!(follow("false"), ["then"]);
}

/// Figure 11: twelve control-flow edges for the if-then-else tagger.
#[test]
fn figure11_wiring_edge_count() {
    let g = builtin::if_then_else();
    let edges = wiring_edges(&g, &g.analyze());
    assert_eq!(edges.len(), 12);
}

/// §4.3: "The grammar for XML-RPC is relatively small with only 45
/// tokens and approximately 300 bytes of pattern data."
#[test]
fn section43_grammar_size() {
    let g = xmlrpc_grammar();
    assert!((40..=48).contains(&g.tokens().len()));
    assert!((270..=320).contains(&g.pattern_bytes()));
}

/// §4.3: "Processing only 1 byte per clock cycle" — bandwidth = 8×freq.
/// The headline Virtex-4 row: 533 MHz → 4.26 Gbps.
#[test]
fn bandwidth_formula() {
    let row = cfg_token_tagger::fpga::UtilizationRow::new("Virtex4 LX200", 533.0, 300, 302);
    assert!((row.bandwidth_gbps - 4.264).abs() < 1e-6);
}

/// §3.4: "In a naive implementation of an encoder for a large set of
/// rules, the index encoder is almost always the critical path for the
/// entire system since rest of the design is highly pipelined."
#[test]
fn naive_encoder_is_the_critical_path() {
    let g = transform::duplicate_multi_context_tokens(&xmlrpc_grammar());
    let paper = generate(&g, &GeneratorOptions::default()).unwrap();
    let naive =
        generate(&g, &GeneratorOptions { encoder: EncoderKind::Naive, ..Default::default() })
            .unwrap();
    let m_paper = MappedNetlist::map(&paper.netlist);
    let m_naive = MappedNetlist::map(&naive.netlist);
    // The naive grant chain multiplies the logic depth…
    assert!(m_naive.stats().depth >= 3 * m_paper.stats().depth);
    // …and halves (or worse) the clock on the device model.
    let d = Device::virtex4_lx200();
    let f_paper = d.analyze(&m_paper).freq_mhz;
    let f_naive = d.analyze(&m_naive).freq_mhz;
    assert!(f_naive * 2.0 < f_paper, "naive {f_naive:.0} MHz vs pipelined {f_paper:.0} MHz");
}

/// §3.4: "the critical path has maximum of (log n)-1 gate delays …
/// pipelined after every gate" — the pipelined encoder adds **no** logic
/// depth over having no encoder at all (it registers every level); the
/// design's depth is set by the syntactic control flow.
#[test]
fn pipelined_encoder_adds_no_logic_depth() {
    let g = transform::duplicate_multi_context_tokens(&xmlrpc_grammar());
    let with = generate(&g, &GeneratorOptions::default()).unwrap();
    let without =
        generate(&g, &GeneratorOptions { encoder: EncoderKind::None, ..Default::default() })
            .unwrap();
    let d_with = MappedNetlist::map(&with.netlist).stats().depth;
    let d_without = MappedNetlist::map(&without.netlist).stats().depth;
    assert_eq!(d_with, d_without, "the pipelined encoder must not appear on the critical path");
}

/// §3.1 / Figure 2: the stackless machine accepts a *superset* of the
/// grammar — the true parser rejects what the tagger tags.
#[test]
fn superset_acceptance_vs_true_parser() {
    use cfg_token_tagger::baseline::Ll1Parser;
    use cfg_token_tagger::tagger::{TaggerOptions, TokenTagger};
    let g = builtin::balanced_parens();
    let tagger = TokenTagger::compile(&g, TaggerOptions::default()).unwrap();
    let parser = Ll1Parser::new(&g).unwrap();

    let unbalanced = b"( 0 ) )";
    assert!(!parser.accepts(unbalanced));
    let events = tagger.tag_fast(unbalanced);
    assert_eq!(events.len(), 4, "the tagger still tags every token");

    let balanced = b"( ( 0 ) )";
    assert!(parser.accepts(balanced));
    assert_eq!(tagger.tag_fast(balanced).len(), 5);
}

/// §3.2: duplicated tokens give every occurrence a unique grammatical
/// context — the XML-RPC STRING splits into methodName/string/name.
#[test]
fn token_duplication_contexts() {
    let g = transform::duplicate_multi_context_tokens(&xmlrpc_grammar());
    let contexts: Vec<String> = g
        .tokens()
        .iter()
        .filter(|t| t.name.starts_with("STRING"))
        .map(|t| t.context.as_ref().unwrap().production.clone())
        .collect();
    let mut sorted = contexts.clone();
    sorted.sort();
    assert_eq!(sorted, ["methodName", "name", "string"]);
}

/// The architecture tokenizes streams a classical lexer cannot: the
/// dateTime rule needs context to split "19980717T14:08:55" into
/// YEAR MONTH DAY 'T' HOUR ':' MIN ':' SEC.
#[test]
fn context_dependent_tokenization_beats_maximal_munch() {
    use cfg_token_tagger::baseline::SwLexer;
    use cfg_token_tagger::tagger::{TaggerOptions, TokenTagger};
    let g = xmlrpc_grammar();
    let tagger = TokenTagger::compile(&g, TaggerOptions::default()).unwrap();
    let lexer = SwLexer::new(&g);

    let msg = b"<methodCall><methodName>price</methodName><params><param>\
<dateTime.iso8601>19980717T14:08:55</dateTime.iso8601></param></params></methodCall>";

    // The tagger splits the timestamp into its nine context-tagged parts.
    let events = tagger.tag_fast(msg);
    let names: Vec<&str> = events.iter().map(|e| tagger.token_name(e.token)).collect();
    assert!(names.iter().any(|n| n.starts_with("YEAR")));
    assert!(names.iter().any(|n| n.starts_with("SEC")));

    // The classical lexer munches "19980717T14" as one STRING and can
    // never produce a YEAR token here.
    let toks = lexer.tokenize(msg).unwrap();
    let lexed: Vec<&str> = toks.iter().map(|t| g.token_name(t.token)).collect();
    assert!(!lexed.contains(&"YEAR"));
    assert!(lexed.contains(&"STRING"));
}

/// Table 1 shape on the actual synthesized designs (small factors only,
/// to keep the test fast): LUTs/byte falls, fanout grows.
#[test]
fn table1_shape_small_factors() {
    use cfg_token_tagger::grammar::scale;
    let base = xmlrpc_grammar();
    let mut prev_lpb = f64::MAX;
    let mut prev_fanout = 0usize;
    for factor in [1usize, 2] {
        let g = transform::duplicate_multi_context_tokens(&scale::replicate(&base, factor));
        let hw = generate(&g, &GeneratorOptions::default()).unwrap();
        let stats = MappedNetlist::map(&hw.netlist).stats();
        let lpb = stats.luts as f64 / hw.pattern_bytes as f64;
        assert!(lpb < prev_lpb, "LUTs/byte must fall with size");
        assert!(stats.max_fanout > prev_fanout, "decoder fanout must grow");
        prev_lpb = lpb;
        prev_fanout = stats.max_fanout;
    }
}

/// The grammar text of Figure 14 round-trips through our renderer.
#[test]
fn xmlrpc_grammar_render_roundtrip() {
    let g = xmlrpc_grammar();
    let rendered = g.render();
    let g2 = Grammar::parse(&rendered).unwrap();
    assert_eq!(g2.tokens().len(), g.tokens().len());
    assert_eq!(g2.productions().len(), g.productions().len());
    assert_eq!(g2.pattern_bytes(), g.pattern_bytes());
    // Same start set after the round trip.
    let s1: Vec<String> =
        g.analyze().start_set.iter().map(|t| g.token_name(t).to_owned()).collect();
    let s2: Vec<String> =
        g2.analyze().start_set.iter().map(|t| g2.token_name(t).to_owned()).collect();
    assert_eq!(s1, s2);
}

/// Unused token ids stay stable across compile: public lookups work.
#[test]
fn public_token_lookups() {
    let g = xmlrpc_grammar();
    let t = g.token_by_name("STRING").unwrap();
    assert_eq!(g.token_name(t), "STRING");
    assert_eq!(t, TokenId(0));
}

/// The JSON grammar exercises delimiter bytes *inside* tokens (spaces in
/// string literals) and key-vs-value context splitting; all four
/// execution paths must agree on it.
#[test]
fn json_all_engines_agree() {
    use cfg_token_tagger::tagger::{PdaParser, TaggerOptions, TokenTagger, WideTagger};
    let g = builtin::json();
    let tagger = TokenTagger::compile(&g, TaggerOptions::default()).unwrap();
    let wide = WideTagger::compile(&g, 4, TaggerOptions::default()).unwrap();
    let pda = PdaParser::new(&g);

    let docs: [&[u8]; 4] = [
        br#"{"a": 1}"#,
        br#"[1, "two words", {"k": null}, true]"#,
        br#"{"nested": {"deep": [1.5, -2e3]}}"#,
        br#""just a string""#,
    ];
    for doc in docs {
        let fast = tagger.tag_fast(doc);
        let gate = tagger.tag_gate(doc).unwrap();
        let w = wide.tag(doc).unwrap();
        assert_eq!(fast, gate, "{}", String::from_utf8_lossy(doc));
        assert_eq!(fast, w, "{}", String::from_utf8_lossy(doc));
        let exact = pda.parse(doc);
        assert!(exact.accepted, "{}", String::from_utf8_lossy(doc));
    }

    // The PDA rejects malformed JSON that the stackless tagger still
    // partially tags.
    assert!(!pda.accepts(br#"{"a": }"#));
    assert!(!pda.accepts(br#"[1, 2"#));
}
