//! Property-based tests over the core invariants.
//!
//! The central property is hardware/software co-verification: the
//! gate-level engine (the generated circuit, simulated cycle by cycle)
//! and the fast functional engine must produce identical event streams
//! on arbitrary inputs — conforming or not.

use proptest::prelude::*;

use cfg_token_tagger::grammar::{builtin, Grammar};
use cfg_token_tagger::regex::{ByteSet, MatchSemantics, Pattern};
use cfg_token_tagger::tagger::{StartMode, TaggerOptions, TokenTagger};

// ---------------------------------------------------------------- regex

/// Strategy: a non-nullable pattern string over a tiny alphabet.
fn pattern_strategy() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("[ab]".to_string()),
        Just("[bc]".to_string()),
        Just("[0-9]".to_string()),
        Just("!a".to_string()),
    ];
    let elem = (atom, prop_oneof![Just(""), Just("+"), Just("?"), Just("*")])
        .prop_map(|(a, p)| format!("{a}{p}"));
    // A head literal keeps the whole pattern non-nullable.
    (prop_oneof![Just("a"), Just("b"), Just("c")], prop::collection::vec(elem, 0..4))
        .prop_map(|(head, tail)| format!("{head}{}", tail.join("")))
}

fn input_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'0'), Just(b'7'), Just(b' '),],
        0..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GlobalLongest is an upper bound on every hardware-asserted end.
    #[test]
    fn hardware_ends_bounded_by_global_longest(
        pat in pattern_strategy(),
        input in input_strategy(),
    ) {
        let p = Pattern::parse(&pat).unwrap();
        let global = p.find_longest_at(&input, 0, MatchSemantics::GlobalLongest);
        let ends = p.nfa().hardware_ends(&input, 0);
        for &e in &ends {
            prop_assert!(e <= input.len());
            prop_assert!(global.is_some());
            prop_assert!(e <= global.unwrap());
        }
        // The longest hardware end equals the global longest whenever
        // any end is asserted at all.
        if let Some(&max) = ends.iter().max() {
            prop_assert_eq!(max, global.unwrap());
        }
    }

    /// Full match agrees with "longest-at-0 spans the input".
    #[test]
    fn full_match_consistency(pat in pattern_strategy(), input in input_strategy()) {
        let p = Pattern::parse(&pat).unwrap();
        let full = p.is_full_match(&input);
        let longest = p.find_longest_at(&input, 0, MatchSemantics::GlobalLongest);
        if full {
            prop_assert_eq!(longest, Some(input.len()));
        }
        if longest == Some(input.len()) && !input.is_empty() {
            prop_assert!(full);
        }
    }

    /// Reversed template recognises exactly the mirror language.
    #[test]
    fn reverse_template_mirror(pat in pattern_strategy(), input in input_strategy()) {
        let p = Pattern::parse(&pat).unwrap();
        let rev = cfg_token_tagger::regex::Nfa::from_template(&p.template().reversed());
        let mirrored: Vec<u8> = input.iter().rev().copied().collect();
        prop_assert_eq!(p.is_full_match(&input), rev.is_full_match(&mirrored));
    }
}

// -------------------------------------------------------------- bytesets

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn byteset_algebra_laws(a in prop::collection::vec(any::<u8>(), 0..16),
                            b in prop::collection::vec(any::<u8>(), 0..16)) {
        let sa: ByteSet = a.iter().copied().collect();
        let sb: ByteSet = b.iter().copied().collect();
        // De Morgan.
        prop_assert_eq!(
            sa.union(sb).complement(),
            sa.complement().intersect(sb.complement())
        );
        // Difference via complement.
        prop_assert_eq!(sa.difference(sb), sa.intersect(sb.complement()));
        // Cardinality of disjoint union.
        prop_assert_eq!(
            sa.union(sb).len() + sa.intersect(sb).len(),
            sa.len() + sb.len()
        );
        // Membership matches construction.
        for &x in &a {
            prop_assert!(sa.contains(x));
        }
    }
}

// ------------------------------------------------------ engines agree

/// Build a one-token grammar in Always mode; any byte stream is legal
/// input, so this fuzzes the whole generate→simulate pipeline.
fn single_token_tagger(pat: &str) -> Option<TokenTagger> {
    let text = format!("TOK {pat}\n%%\ns: TOK;\n%%\n");
    let g = Grammar::parse(&text).ok()?;
    TokenTagger::compile(&g, TaggerOptions { start_mode: StartMode::Always, ..Default::default() })
        .ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The generated circuit and the functional mirror agree
    /// event-for-event on arbitrary inputs.
    #[test]
    fn gate_equals_fast_on_random_patterns(
        pat in pattern_strategy(),
        input in input_strategy(),
    ) {
        // Patterns whose first byte class overlaps the delimiter set are
        // rejected by the generator; skip those cases.
        let Some(tagger) = single_token_tagger(&pat) else {
            return Ok(());
        };
        let fast = tagger.tag_fast(&input);
        let gate = tagger.tag_gate(&input).unwrap();
        prop_assert_eq!(fast, gate, "pattern {} input {:?}", pat, input);
    }

    /// Same property on grammar-driven sequences: random conforming and
    /// non-conforming if-then-else streams.
    #[test]
    fn gate_equals_fast_on_random_ite_streams(
        words in prop::collection::vec(
            prop_oneof![
                Just("if"), Just("then"), Just("else"), Just("go"),
                Just("stop"), Just("true"), Just("false"), Just("xx"),
            ],
            0..8,
        ),
        seps in prop::collection::vec(prop_oneof![Just(" "), Just("  "), Just("\t")], 8),
    ) {
        let g = builtin::if_then_else();
        let tagger = TokenTagger::compile(&g, TaggerOptions::default()).unwrap();
        let mut input = String::new();
        for (w, s) in words.iter().zip(seps.iter()) {
            input.push_str(w);
            input.push_str(s);
        }
        let fast = tagger.tag_fast(input.as_bytes());
        let gate = tagger.tag_gate(input.as_bytes()).unwrap();
        prop_assert_eq!(fast, gate, "input {:?}", input);
    }
}

// -------------------------------------- four engines, one event stream

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The bit-parallel kernel, its wide-stepping simd front end, the
    /// scalar reference and the simulated circuit produce byte-identical
    /// event streams on random patterns, random inputs, every
    /// start-mode/recovery combination, and every chunk split of the
    /// stream — the full hardware/software co-verification square.
    /// Every engine is built through the unified [`EngineKind`]
    /// constructor and driven through the slice-first [`Engine`] trait,
    /// so this also pins the trait path to the bespoke constructors'
    /// behaviour. The 1-byte chunk split is the dribble case: it forces
    /// the simd engine to carry dead/idle/chain state across every
    /// feed boundary.
    #[test]
    fn bitset_equals_scalar_gate_and_simd(
        pat in pattern_strategy(),
        input in input_strategy(),
        always in any::<bool>(),
        recover in any::<bool>(),
    ) {
        use cfg_token_tagger::tagger::EngineKind;

        let text = format!("TOK {pat}\n%%\ns: TOK;\n%%\n");
        let Ok(g) = Grammar::parse(&text) else { return Ok(()) };
        let opts = TaggerOptions {
            start_mode: if always { StartMode::Always } else { StartMode::AtStart },
            error_recovery: recover,
            ..Default::default()
        };
        // Patterns the generator rejects (e.g. first byte class overlaps
        // the delimiters) are skipped, as in the gate test above.
        let Ok(tagger) = TokenTagger::compile(&g, opts) else { return Ok(()) };

        let mut scalar = tagger.engine(EngineKind::Scalar).unwrap();
        let mut expect = Vec::new();
        scalar.feed_slice(&input, &mut expect).unwrap();
        scalar.finish_into(&mut expect).unwrap();

        // Bit kernel and simd front end: batch, then every chunk split
        // (1/2/3/7) — the lookahead carry across feed() boundaries must
        // be seamless, and for simd the 1-byte dribble exercises the
        // cross-block state carry of every run class.
        let batch = tagger.tag_fast(&input);
        prop_assert_eq!(&batch, &expect, "batch: pattern {} input {:?}", pat, input);
        for kind in [EngineKind::Bit, EngineKind::Simd] {
            for chunk in [1usize, 2, 3, 7, input.len().max(1)] {
                let mut e = tagger.engine(kind).unwrap();
                let mut got = Vec::new();
                for c in input.chunks(chunk) {
                    e.feed_slice(c, &mut got).unwrap();
                }
                e.finish_into(&mut got).unwrap();
                prop_assert_eq!(
                    &got, &expect,
                    "{} chunk {}: pattern {} input {:?}", kind, chunk, pat, input
                );
            }
        }

        let mut gate_engine = tagger.engine(EngineKind::Gate).unwrap();
        let mut gate = Vec::new();
        gate_engine.feed_slice(&input, &mut gate).unwrap();
        gate_engine.finish_into(&mut gate).unwrap();
        prop_assert_eq!(&gate, &expect, "gate: pattern {} input {:?}", pat, input);
    }
}

// -------------------------------------------------- tagger vs LL(1)

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On *conforming* sentences, the tagger's spans equal the classical
    /// lexer+LL(1) pipeline's tokens (arithmetic grammar).
    #[test]
    fn tagger_matches_ll1_on_conforming_arithmetic(depth in 0usize..3, seed in any::<u64>()) {
        use cfg_token_tagger::baseline::Ll1Parser;
        use rand::prelude::*;

        let g = builtin::arithmetic();
        let tagger = TokenTagger::compile(&g, TaggerOptions::default()).unwrap();
        let parser = Ll1Parser::new(&g).unwrap();

        // Random expression via the grammar itself.
        fn expr(rng: &mut StdRng, depth: usize, out: &mut String) {
            term(rng, depth, out);
            while depth > 0 && rng.random_bool(0.4) {
                out.push_str([" + ", " - "].choose(rng).unwrap());
                term(rng, depth - 1, out);
            }
        }
        fn term(rng: &mut StdRng, depth: usize, out: &mut String) {
            factor(rng, depth, out);
            while depth > 0 && rng.random_bool(0.3) {
                out.push_str([" * ", " / "].choose(rng).unwrap());
                factor(rng, depth - 1, out);
            }
        }
        fn factor(rng: &mut StdRng, depth: usize, out: &mut String) {
            if depth > 0 && rng.random_bool(0.3) {
                out.push_str("( ");
                expr(rng, depth - 1, out);
                out.push_str(" )");
            } else if rng.random_bool(0.5) {
                out.push_str(&format!("{}", rng.random_range(0..1000)));
            } else {
                out.push_str(["x", "y", "count", "a1"].choose(rng).unwrap());
            }
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let mut sentence = String::new();
        expr(&mut rng, depth, &mut sentence);

        let truth = parser.parse(sentence.as_bytes()).expect("conforming by construction");
        let tagged = tagger.tag_fast(sentence.as_bytes());
        let truth_spans: Vec<(usize, usize)> = truth.iter().map(|t| (t.start, t.end)).collect();
        let tag_spans: Vec<(usize, usize)> = tagged.iter().map(|e| (e.start, e.end)).collect();
        prop_assert_eq!(tag_spans, truth_spans, "sentence {}", sentence);
    }
}

// ------------------------------------------------------------- encoder

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Slot assignment: codes are unique, nonzero, within width, and
    /// chained groups satisfy equation 5.
    #[test]
    fn slot_assignment_invariants(n in 1usize..40, group_seed in any::<u64>()) {
        use cfg_token_tagger::hwgen::encoder::assign_slots;
        use rand::prelude::*;

        // Random disjoint groups over 0..n.
        let mut rng = StdRng::seed_from_u64(group_seed);
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(&mut rng);
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut it = ids.into_iter();
        while let Some(first) = it.next() {
            let extra = rng.random_range(0..3usize);
            let mut g = vec![first];
            for _ in 0..extra {
                if let Some(x) = it.next() {
                    g.push(x);
                }
            }
            if g.len() > 1 {
                groups.push(g);
            }
        }

        let a = assign_slots(n, &groups);
        let mut seen = std::collections::HashSet::new();
        for &c in &a.codes {
            prop_assert!(c > 0);
            prop_assert!(c < 1 << a.width);
            prop_assert!(seen.insert(c));
        }
        // Equation 5 within every chained group: prefix ORs equal the
        // member codes. Groups the budget skipped get plain codes, so
        // only check groups whose codes form a chain.
        for g in &groups {
            let codes: Vec<usize> = g.iter().map(|&t| a.codes[t]).collect();
            let chained = codes.windows(2).all(|w| w[0] & w[1] == w[0]);
            if chained {
                for i in 0..codes.len() {
                    let or = codes[..=i].iter().fold(0, |x, &y| x | y);
                    prop_assert_eq!(or, codes[i]);
                }
            }
        }
    }
}

// ------------------------------------------------------- robustness

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The pattern parser never panics, whatever bytes arrive.
    #[test]
    fn pattern_parser_never_panics(src in "\\PC{0,24}") {
        let _ = Pattern::parse(&src);
    }

    /// The grammar parser never panics either.
    #[test]
    fn grammar_parser_never_panics(src in "\\PC{0,64}") {
        let _ = Grammar::parse(&src);
        // Also with section markers sprinkled in.
        let _ = Grammar::parse(&format!("%%\n{src}\n%%\n"));
    }
}

// ------------------------------------------- netlist sim cross-check

/// A tiny reference evaluator for random combinational DAGs, checked
/// against the production simulator.
mod netlist_fuzz {
    use super::*;
    use cfg_token_tagger::netlist::{NetlistBuilder, Simulator};

    #[derive(Debug, Clone)]
    pub enum GateKind {
        And,
        Or,
        Xor,
        Not,
    }

    pub fn gate_strategy() -> impl Strategy<Value = GateKind> {
        prop_oneof![
            Just(GateKind::And),
            Just(GateKind::Or),
            Just(GateKind::Xor),
            Just(GateKind::Not),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Build a random DAG of gates over 4 inputs; evaluate with the
        /// simulator and with direct recursive evaluation — they must
        /// agree on all 16 input combinations (checked in parallel via
        /// the 64-stream values).
        #[test]
        fn simulator_matches_reference_eval(
            gates in prop::collection::vec((gate_strategy(), any::<u16>(), any::<u16>()), 1..24),
        ) {
            let mut b = NetlistBuilder::new();
            let inputs: Vec<_> = (0..4).map(|i| b.input(&format!("i{i}"))).collect();
            let mut nets = inputs.clone();
            for (kind, a_sel, b_sel) in &gates {
                let ai = (*a_sel as usize) % nets.len();
                let bi = (*b_sel as usize) % nets.len();
                let (na, nb) = (nets[ai], nets[bi]);
                let net = match kind {
                    GateKind::And => b.and2(na, nb),
                    GateKind::Or => b.or2(na, nb),
                    GateKind::Xor => b.xor2(na, nb),
                    GateKind::Not => b.not(na),
                };
                nets.push(net);
            }
            // Reference evaluation bottom-up over the same structure
            // (the value index space grows exactly like `nets` above).
            let eval_all = |v: &[u64; 4]| -> Vec<u64> {
                let mut vals: Vec<u64> = v.to_vec();
                for (kind, a_sel, b_sel) in &gates {
                    let ai = (*a_sel as usize) % vals.len();
                    let bi = (*b_sel as usize) % vals.len();
                    let (x, y) = (vals[ai], vals[bi]);
                    vals.push(match kind {
                        GateKind::And => x & y,
                        GateKind::Or => x | y,
                        GateKind::Xor => x ^ y,
                        GateKind::Not => !x,
                    });
                }
                vals
            };

            let last = *nets.last().unwrap();
            b.output("out", last);
            let nl = b.finish();
            let mut sim = Simulator::new(&nl).unwrap();

            // All 16 combinations of 4 inputs packed into one word each.
            let mut vin = [0u64; 4];
            for combo in 0..16u64 {
                for (i, slot) in vin.iter_mut().enumerate() {
                    if combo & (1 << i) != 0 {
                        *slot |= 1 << combo;
                    }
                }
            }
            sim.step(&vin).unwrap();
            let reference = eval_all(&vin);
            let got = sim.output("out").unwrap();
            let mask = (1u64 << 16) - 1;
            prop_assert_eq!(got & mask, reference.last().unwrap() & mask);
        }
    }
}

// --------------------------------------------------- wide datapath

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The W-lane circuit is a retiming, not a semantic change: its
    /// events equal the byte-serial fast engine's on random streams for
    /// random lane counts.
    #[test]
    fn wide_equals_fast_on_random_streams(
        lanes in 2usize..6,
        words in prop::collection::vec(
            prop_oneof![
                Just("if"), Just("go"), Just("stop"), Just("true"),
                Just("then"), Just("else"), Just("??"),
            ],
            0..6,
        ),
    ) {
        use cfg_token_tagger::tagger::WideTagger;
        let g = builtin::if_then_else();
        let tagger = TokenTagger::compile(&g, TaggerOptions::default()).unwrap();
        let wide = WideTagger::compile(&g, lanes, TaggerOptions::default()).unwrap();
        let input = words.join(" ");
        let fast = tagger.tag_fast(input.as_bytes());
        let w = wide.tag(input.as_bytes()).unwrap();
        prop_assert_eq!(fast, w, "W={} input {:?}", lanes, input);
    }
}

// --------------------------------------------------------- observability

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The metrics layer never disagrees with the event stream: on
    /// arbitrary XML-RPC workloads the [`StatsSink`] aggregate
    /// token-fire counter equals the number of events the engine
    /// returned, the per-token fire counts sum to the same total, and
    /// `bytes_in` equals the stream length.
    #[test]
    fn event_count_equals_token_fire_counter(
        seed in any::<u64>(),
        messages in 1usize..5,
        adversarial in any::<bool>(),
    ) {
        use cfg_token_tagger::obs::{Metrics, Stat, StatsSink};
        use cfg_token_tagger::xmlrpc::{xmlrpc_grammar, MessageKind, WorkloadGenerator};
        use std::sync::Arc;

        let tagger = TokenTagger::compile(&xmlrpc_grammar(), TaggerOptions::default()).unwrap();
        let mut gen = WorkloadGenerator::new(seed);
        let kind = if adversarial { MessageKind::Adversarial } else { MessageKind::Honest };
        let mut input = Vec::new();
        for _ in 0..messages {
            input.extend_from_slice(&gen.message(kind).bytes);
            input.push(b'\n');
        }

        let sink = Arc::new(StatsSink::with_tokens(tagger.grammar().tokens().len()));
        let mut engine = tagger.fast_engine().with_metrics(Metrics::new(sink.clone()));
        let mut events = engine.feed(&input);
        events.extend(engine.finish());

        prop_assert_eq!(sink.get(Stat::EventsOut), events.len() as u64);
        let per_token: u64 = (0..tagger.grammar().tokens().len())
            .map(|i| sink.token_fires(i as u32))
            .sum();
        prop_assert_eq!(per_token, events.len() as u64);
        prop_assert_eq!(sink.get(Stat::BytesIn), input.len() as u64);
    }
}

/// A [`NoopSink`] must be observationally free: the tagged event stream
/// is byte-for-byte identical to the un-instrumented engine's, on
/// conforming and junk streams alike.
#[test]
fn noop_sink_output_is_byte_identical() {
    use cfg_token_tagger::obs::{Metrics, NoopSink};
    use std::sync::Arc;

    let g = builtin::if_then_else();
    for recover in [false, true] {
        let tagger = TokenTagger::compile(
            &g,
            TaggerOptions { error_recovery: recover, ..Default::default() },
        )
        .unwrap();
        for input in [&b"if true then go else stop"[..], &b"zzz go ?? stop if"[..], &b""[..]] {
            let plain = tagger.tag_fast(input);
            let mut noop = tagger.fast_engine().with_metrics(Metrics::new(Arc::new(NoopSink)));
            let mut traced = noop.feed(input);
            traced.extend(noop.finish());
            assert_eq!(plain, traced, "recover={recover} input={input:?}");
        }
    }
}
