//! The chaos integration test: a live ingest server under seeded fault
//! injection.
//!
//! A fleet of hostile clients (poison payloads, corrupt and truncated
//! frames, slow-loris dribbling, mid-stream disconnects) hammers the
//! server alongside clean clients, all driven by a fixed seed. The
//! assertions are the serving-layer contract:
//!
//! 1. the server stays live — a clean client served *after* the chaos
//!    gets correct answers;
//! 2. worker panics are supervised — the restart counter is visible in
//!    `/metrics` and nonzero;
//! 3. overload sheds with `Busy` frames instead of blocking;
//! 4. **no acked event is ever lost or wrong** — every acknowledged
//!    frame's events are byte-identical to an unfaulted local run.

use cfg_grammar::builtin;
use cfg_obs::json::Json;
use cfg_obs::SharedRegistry;
use cfg_obs_http::{http_get, Exporter, ServiceState};
use cfg_server::frame::encode_events;
use cfg_server::{Client, FaultPlan, IngestServer, IoModel, Reply, ServerConfig, TraceConfig};
use cfg_tagger::{TaggerOptions, TokenTagger};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0xC0FFEE;
const PANIC_TOKEN: &[u8] = b"POISON";

fn corpus() -> Vec<Vec<u8>> {
    [
        "if true then go else stop",
        "go",
        "stop stop go",
        "if false then stop else go",
        "if true then if false then go else stop else go",
        "zzz not grammar zzz",
        "true false true",
        "",
    ]
    .iter()
    .map(|s| s.as_bytes().to_vec())
    .collect()
}

#[test]
fn server_survives_chaos_without_losing_acked_events() {
    let tagger = TokenTagger::compile(&builtin::if_then_else(), TaggerOptions::default()).unwrap();
    let registry = Arc::new(SharedRegistry::new());
    let state = Arc::new(ServiceState::new());
    let config = ServerConfig {
        shards: 2,
        queue_depth: 2,
        max_sessions: 32,
        idle_timeout: Duration::from_secs(5),
        panic_token: Some(PANIC_TOKEN.to_vec()),
        // Long post-panic backoff: poison frames reliably push the
        // small queues into Busy territory.
        backoff_base_ms: 50,
        backoff_max_ms: 200,
        registry: Some(Arc::clone(&registry)),
        state: Some(Arc::clone(&state)),
        // Trace every frame: chaos must not be able to produce a
        // malformed span, however the fault dice land.
        trace: Some(TraceConfig { sample_every: 1, ring: 4096, ..TraceConfig::default() }),
        ..ServerConfig::default()
    };
    let server = IngestServer::start(&tagger, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();
    let exporter =
        Exporter::bind("127.0.0.1:0", Arc::clone(&registry), Arc::clone(&state)).unwrap();
    let metrics_addr = exporter.local_addr().to_string();

    // The unfaulted ground truth: what each payload must tag to,
    // computed locally. Poisoned payloads are never acked, so the
    // expectation only needs unmodified corpus entries plus whatever a
    // faulty client actually sent (its outcome carries the payloads).
    let expect = |payload: &[u8]| encode_events(&tagger.tag_fast(payload));

    let corpus = corpus();
    let messages: Vec<Vec<u8>> = (0..24).map(|i| corpus[i % corpus.len()].clone()).collect();

    // Hostile fleet: 6 aggressive + 2 calm clients, all seeded.
    let mut handles = Vec::new();
    for client_index in 0..8u64 {
        let plan = if client_index < 6 { FaultPlan::hostile(SEED) } else { FaultPlan::calm(SEED) };
        let msgs = messages.clone();
        handles.push(std::thread::spawn(move || {
            cfg_server::fault::run_client(addr, &plan, client_index, &msgs)
        }));
    }
    // One fully clean client runs concurrently with the chaos. It
    // treats Busy as what it is — a retryable backpressure signal —
    // and keeps going until every message is acked.
    let clean_msgs = messages.clone();
    let clean = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let mut acked: Vec<(Vec<u8>, Vec<cfg_tagger::TagEvent>)> = Vec::new();
        let mut busys = 0usize;
        for m in &clean_msgs {
            let mut attempts = 0;
            loop {
                match client.request(m).unwrap() {
                    Reply::Acked { events, .. } => {
                        acked.push((m.clone(), events));
                        break;
                    }
                    Reply::Busy { .. } => {
                        busys += 1;
                        attempts += 1;
                        assert!(attempts < 500, "server shed the same frame 500 times");
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    other => panic!("clean client got {other:?}"),
                }
            }
        }
        client.close().unwrap();
        (acked, busys)
    });

    let mut acked_frames = 0usize;
    let mut busy_frames = 0usize;
    let mut err_frames = 0usize;
    for handle in handles {
        let outcome = handle.join().unwrap().expect("faulty client transport");
        busy_frames += outcome.busy.len();
        err_frames += outcome.errors.len();
        for (seq, events) in &outcome.acked {
            let (_, payload) = outcome
                .sent
                .iter()
                .find(|(s, _)| s == seq)
                .expect("ack for a frame that was never sent");
            assert_eq!(
                encode_events(events),
                expect(payload),
                "acked events diverged from the unfaulted run (seq {seq})"
            );
            acked_frames += 1;
        }
    }

    // The concurrent clean client: every message eventually acked,
    // every ack byte-identical to the local run. (Faulty clients that
    // hang up mid-stream forfeit their replies, so the *fleet* ack
    // count may be anything — the invariant is on acks received.)
    let (clean_acked, clean_busys) = clean.join().unwrap();
    busy_frames += clean_busys;
    assert_eq!(clean_acked.len(), messages.len(), "clean client must get every message acked");
    for (payload, events) in &clean_acked {
        assert_eq!(encode_events(events), expect(payload), "clean client ack diverged");
    }
    assert!(
        acked_frames + clean_acked.len() >= messages.len(),
        "chaos run produced no verified acks"
    );

    // Deterministic supervision + overload probe, independent of the
    // chaos dice: land a poison frame (retrying through any leftover
    // backpressure), then flood the worker's post-panic backoff window.
    let mut probe = Client::connect(addr).unwrap();
    loop {
        match probe.request(b"go POISON go").unwrap() {
            Reply::Rejected { reason } => {
                assert!(reason.contains("worker panic"), "{reason}");
                err_frames += 1;
                break;
            }
            Reply::Busy { .. } => std::thread::sleep(Duration::from_millis(10)),
            other => panic!("poison probe got {other:?}"),
        }
    }
    for _ in 0..8 {
        probe.send(b"go").unwrap();
    }
    let probe_replies = probe.close().unwrap();
    let probe_busys = probe_replies.iter().filter(|r| matches!(r, Reply::Busy { .. })).count();
    assert!(probe_busys > 0, "flood against a backoff worker must shed: {probe_replies:?}");
    busy_frames += probe_busys;

    // Poison frames tripped supervised restarts, and the floods against
    // depth-2 queues shed with Busy.
    assert!(err_frames > 0, "no worker-panic Err frames came back");
    assert!(busy_frames > 0, "overload never shed with Busy");

    // The restart counter is live in /metrics, as an orchestrator
    // would scrape it.
    let metrics = http_get(&metrics_addr, "/metrics").unwrap();
    let restarts: u64 = metrics
        .lines()
        .filter(|l| l.starts_with("cfgtag_worker_restarts_total"))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum();
    assert!(restarts > 0, "no worker restarts visible in /metrics:\n{metrics}");
    let shed: u64 = metrics
        .lines()
        .filter(|l| l.starts_with("cfgtag_load_shed_total"))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum();
    assert!(shed > 0, "no load shedding visible in /metrics");

    // Chaos cannot corrupt a span: every trace the run retained still
    // decomposes into stage durations that sum exactly to its
    // end-to-end latency, and the live SLO view stayed coherent.
    let spans_body = http_get(&metrics_addr, "/spans.jsonl").unwrap();
    let mut traced = 0usize;
    for line in spans_body.lines() {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("bad span line {line}: {e}"));
        let total = v.get("total_ns").unwrap().as_u64().expect("total_ns is a u64");
        let stage_sum: u64 = v
            .get("stages")
            .unwrap()
            .as_object()
            .unwrap()
            .iter()
            .map(|(_, ns)| ns.as_u64().expect("stage ns is a u64"))
            .sum();
        assert_eq!(stage_sum, total, "span stages diverged from end-to-end under chaos: {line}");
        traced += 1;
    }
    assert!(traced > 0, "a traced chaos run retained no spans");
    let slo = Json::parse(&http_get(&metrics_addr, "/slo.json").unwrap()).unwrap();
    let slo_total = slo.get("total").unwrap().as_u64().unwrap();
    assert!(slo_total > 0, "SLO tracker observed nothing under chaos");
    assert!(slo_total >= traced as u64, "tracker saw fewer frames than the ring retained");

    // The server is still live after the chaos: a fresh clean session
    // gets exact answers.
    let mut after = Client::connect(addr).unwrap();
    match after.request(b"if true then go else stop").unwrap() {
        Reply::Acked { events, .. } => {
            assert_eq!(events, tagger.tag_fast(b"if true then go else stop"));
        }
        other => panic!("post-chaos request failed: {other:?}"),
    }
    after.close().unwrap();

    let report = server.shutdown();
    exporter.stop();
    assert!(report.shard.restarts > 0);
    assert!(report.shed > 0);
    assert!(report.sessions_served >= 10);
    // Queued poison frames may still panic between the scrape and the
    // shutdown, so the final report can only be >= the scraped value.
    assert!(report.shard.restarts >= restarts, "report lost restarts vs /metrics");
}

/// Run the seeded hostile fleet plus one clean retrying client against
/// a fresh server under `io`, verify every ack byte-identical to the
/// unfaulted local run, and return the clean client's acked event
/// streams (wire encoding, in send order).
fn run_fleet(io: IoModel) -> Vec<Vec<u8>> {
    let tagger = TokenTagger::compile(&builtin::if_then_else(), TaggerOptions::default()).unwrap();
    let config = ServerConfig {
        io_model: io,
        shards: 2,
        queue_depth: 2,
        max_sessions: 32,
        idle_timeout: Duration::from_secs(5),
        panic_token: Some(PANIC_TOKEN.to_vec()),
        backoff_base_ms: 50,
        backoff_max_ms: 200,
        ..ServerConfig::default()
    };
    let server = IngestServer::start(&tagger, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();
    let expect = |payload: &[u8]| encode_events(&tagger.tag_fast(payload));

    let corpus = corpus();
    let messages: Vec<Vec<u8>> = (0..24).map(|i| corpus[i % corpus.len()].clone()).collect();

    let mut handles = Vec::new();
    for client_index in 0..8u64 {
        let plan = if client_index < 6 { FaultPlan::hostile(SEED) } else { FaultPlan::calm(SEED) };
        let msgs = messages.clone();
        handles.push(std::thread::spawn(move || {
            cfg_server::fault::run_client(addr, &plan, client_index, &msgs)
        }));
    }
    let clean_msgs = messages.clone();
    let clean = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let mut acked: Vec<(Vec<u8>, Vec<cfg_tagger::TagEvent>)> = Vec::new();
        for m in &clean_msgs {
            let mut attempts = 0;
            loop {
                match client.request(m).unwrap() {
                    Reply::Acked { events, .. } => {
                        acked.push((m.clone(), events));
                        break;
                    }
                    Reply::Busy { .. } => {
                        attempts += 1;
                        assert!(attempts < 500, "server shed the same frame 500 times");
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    other => panic!("clean client got {other:?}"),
                }
            }
        }
        client.close().unwrap();
        acked
    });

    for handle in handles {
        let outcome = handle.join().unwrap().expect("faulty client transport");
        for (seq, events) in &outcome.acked {
            let (_, payload) = outcome
                .sent
                .iter()
                .find(|(s, _)| s == seq)
                .expect("ack for a frame that was never sent");
            assert_eq!(
                encode_events(events),
                expect(payload),
                "[{io:?}] acked events diverged from the unfaulted run (seq {seq})"
            );
        }
    }

    let clean_acked = clean.join().unwrap();
    assert_eq!(
        clean_acked.len(),
        messages.len(),
        "[{io:?}] clean client must get every message acked"
    );
    server.shutdown();
    clean_acked.into_iter().map(|(_, events)| encode_events(&events)).collect()
}

#[test]
fn chaos_acked_stream_identical_under_reactor() {
    // The same seeded hostile fleet, served twice: once by the threaded
    // io-model, once by the epoll reactor. Both runs verify every ack
    // against the offline `tag_fast` ground truth inside `run_fleet`,
    // and the clean client's acked event streams must come back
    // byte-for-byte identical — the io-model is invisible in the data.
    let threaded = run_fleet(IoModel::Threads);
    let reactor = run_fleet(IoModel::Reactor);
    assert_eq!(
        threaded, reactor,
        "reactor acked stream diverged from the threaded run under the same seed"
    );
}

#[test]
fn chaos_replays_identically_for_the_same_seed() {
    // Determinism of the harness itself: the same plan, seed and
    // client index must produce the same fault decisions (observed via
    // which payloads made it to the wire against a quiet server).
    let tagger = TokenTagger::compile(&builtin::if_then_else(), TaggerOptions::default()).unwrap();
    let config = ServerConfig {
        panic_token: Some(PANIC_TOKEN.to_vec()),
        backoff_base_ms: 1,
        backoff_max_ms: 2,
        ..ServerConfig::default()
    };
    let server = IngestServer::start(&tagger, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();
    let messages = corpus();

    let plan = FaultPlan::hostile(7);
    let a = cfg_server::fault::run_client(addr, &plan, 1, &messages).unwrap();
    let b = cfg_server::fault::run_client(addr, &plan, 1, &messages).unwrap();
    assert_eq!(a.sent, b.sent, "same seed, same wire history");
    assert_eq!(a.disconnected, b.disconnected);

    server.shutdown();
}
