//! End-to-end integration: the §4 XML-RPC router running on the actual
//! generated circuit, cross-checked against the functional engine and
//! the LL(1) ground truth.

use cfg_token_tagger::baseline::Ll1Parser;
use cfg_token_tagger::tagger::{TaggerOptions, TokenTagger};
use cfg_token_tagger::xmlrpc::workload::{MessageKind, WorkloadGenerator};
use cfg_token_tagger::xmlrpc::{xmlrpc_grammar, Router, RouterTables};

#[test]
fn gate_and_fast_agree_on_xmlrpc_messages() {
    let tagger = TokenTagger::compile(&xmlrpc_grammar(), TaggerOptions::default()).unwrap();
    let mut gen = WorkloadGenerator::new(501);
    for _ in 0..5 {
        let m = gen.message(MessageKind::Honest);
        let fast = tagger.tag_fast(&m.bytes);
        let gate = tagger.tag_gate(&m.bytes).unwrap();
        assert_eq!(fast, gate, "message {:?}", String::from_utf8_lossy(&m.bytes));
        assert!(!fast.is_empty());
    }
}

#[test]
fn gate_and_fast_agree_on_adversarial_and_full_value_messages() {
    let tagger = TokenTagger::compile(&xmlrpc_grammar(), TaggerOptions::default()).unwrap();
    let mut gen = WorkloadGenerator::new(502).with_full_values();
    for kind in [MessageKind::Honest, MessageKind::Adversarial] {
        let m = gen.message(kind);
        let fast = tagger.tag_fast(&m.bytes);
        let gate = tagger.tag_gate(&m.bytes).unwrap();
        assert_eq!(fast, gate, "{kind:?} {:?}", String::from_utf8_lossy(&m.bytes));
    }
}

#[test]
fn tagger_token_sequence_matches_ll1_on_lexable_messages() {
    // The Figure 14 token list is *lexically ambiguous*: "123" is both
    // INT and STRING, so a classical maximal-munch lexer (and hence the
    // LL(1) pipeline behind it) can only handle messages where no such
    // collision occurs — string values with at least one letter, no
    // numeric/dateTime/base64 params. The tagger resolves the ambiguity
    // by context and handles everything; on the messages the classical
    // pipeline *can* parse, the two must agree span-for-span.
    let g = xmlrpc_grammar();
    let tagger = TokenTagger::compile(&g, TaggerOptions::default()).unwrap();
    let ll1 = Ll1Parser::new(&g).unwrap();

    let lexable: [&[u8]; 3] = [
        b"<methodCall><methodName>deposit</methodName><params>\
          <param><string>paycheck</string></param></params></methodCall>",
        b"<methodCall><methodName>buy</methodName><params>\
          <param><struct><member><name>item</name><string>book42x</string></member></struct></param>\
          <param><string>gift</string></param></params></methodCall>",
        b"<methodCall><methodName>price</methodName><params>\
          <param><array><data><string>apples</string><string>pears</string></data></array></param>\
          </params></methodCall>",
    ];
    for msg in lexable {
        let msg: Vec<u8> = msg.iter().copied().filter(|b| !b.is_ascii_whitespace()).collect();
        let truth = ll1.parse(&msg).expect("lexable message conforms");
        let tagged = tagger.tag_fast(&msg);
        let truth_spans: Vec<(usize, usize)> = truth.iter().map(|t| (t.start, t.end)).collect();
        let tagged_spans: Vec<(usize, usize)> = tagged.iter().map(|e| (e.start, e.end)).collect();
        assert_eq!(tagged_spans, truth_spans, "{}", String::from_utf8_lossy(&msg));
    }

    // And the documented classical-pipeline failure: a plain i4 value
    // lexes its digits as STRING (declared first), so the LL(1) parser
    // rejects a perfectly conforming message…
    let numeric = b"<methodCall><methodName>deposit</methodName><params>\
<param><i4>123</i4></param></params></methodCall>";
    assert!(ll1.parse(numeric).is_err(), "lexical ambiguity should break the classical pipeline");
    // …which the context-driven tagger tags completely.
    let events = tagger.tag_fast(numeric);
    assert!(events.iter().any(|e| tagger.token_name(e.token).starts_with("INT")));
}

#[test]
fn router_decisions_survive_the_gate_level_path() {
    // Route decisions made from gate-level raw matches (spans resolved
    // in software) must equal the fast-engine decisions.
    let tagger = TokenTagger::compile(&xmlrpc_grammar(), TaggerOptions::default()).unwrap();
    let tables = RouterTables::new(&tagger).unwrap();
    let mut gen = WorkloadGenerator::new(504);
    for kind in [MessageKind::Honest, MessageKind::Adversarial] {
        let m = gen.message(kind);
        let fast_port = Router::route(&tagger, &tables, &m.bytes);

        // Gate path: raw matches -> spans -> router events.
        let events = tagger.tag_gate(&m.bytes).unwrap();
        let gate_port = events
            .iter()
            .find(|e| e.token == tables.method_string_token())
            .map(|e| Router::port_for(&String::from_utf8_lossy(e.lexeme(&m.bytes))))
            .unwrap_or(cfg_token_tagger::xmlrpc::Port::Unknown);
        assert_eq!(fast_port, gate_port);
        assert_eq!(fast_port, Router::port_for(&m.method));
    }
}

#[test]
fn whitespace_between_tags_is_tolerated() {
    // Pretty-printed XML: delimiters between tokens, held by the arm
    // registers (§3.2).
    let tagger = TokenTagger::compile(&xmlrpc_grammar(), TaggerOptions::default()).unwrap();
    let msg = b"<methodCall>\n  <methodName>withdraw</methodName>\n  <params>\n    <param>\n      <i4>250</i4>\n    </param>\n  </params>\n</methodCall>";
    let fast = tagger.tag_fast(msg);
    let gate = tagger.tag_gate(msg).unwrap();
    assert_eq!(fast, gate);
    let names: Vec<&str> = fast.iter().map(|e| tagger.token_name(e.token)).collect();
    assert!(names.iter().any(|n| n.starts_with("STRING")));
    assert_eq!(names.first().copied(), Some("<methodCall>"));
    assert_eq!(names.last().copied(), Some("</methodCall>"));
}

#[test]
fn error_recovery_enables_multi_message_streams() {
    // §5.2 recovery lets one circuit process a stream of messages with a
    // single start pulse: after each message the machine goes dead and
    // resyncs at the next token boundary.
    use cfg_token_tagger::tagger::TaggerOptions as TO;
    let tagger =
        TokenTagger::compile(&xmlrpc_grammar(), TO { error_recovery: true, ..Default::default() })
            .unwrap();
    let tables = RouterTables::new(&tagger).unwrap();

    let mut gen = WorkloadGenerator::new(909);
    let m1 = gen.message(MessageKind::Honest);
    let m2 = gen.message(MessageKind::Honest);
    let mut stream = Vec::new();
    stream.extend_from_slice(&m1.bytes);
    stream.push(b'\n'); // token boundary between messages
    stream.extend_from_slice(&m2.bytes);

    let mut router = Router::new(tables.clone());
    tagger.process(&stream, &mut router);
    let ports: Vec<_> = router.decisions.iter().map(|(_, p)| *p).collect();
    assert_eq!(ports, vec![Router::port_for(&m1.method), Router::port_for(&m2.method)]);

    // The gate-level engine sees the same two methodName events.
    let gate = tagger.tag_gate(&stream).unwrap();
    let method_events: Vec<_> =
        gate.iter().filter(|e| e.token == tables.method_string_token()).collect();
    assert_eq!(method_events.len(), 2);

    // Without recovery, the second message is invisible.
    let plain = TokenTagger::compile(&xmlrpc_grammar(), TaggerOptions::default()).unwrap();
    let plain_tables = RouterTables::new(&plain).unwrap();
    let mut plain_router = Router::new(plain_tables);
    plain.process(&stream, &mut plain_router);
    assert_eq!(plain_router.decisions.len(), 1);
}

#[test]
fn stack_augmented_parser_handles_what_the_lexer_pipeline_cannot() {
    // §5.2's "stack … all the power of a software parser": the
    // scannerless exact parser accepts every conforming message —
    // including the numeric/dateTime ones that break the classical
    // lexer+LL(1) pipeline — and its derivation's token spans equal the
    // tagger's events.
    use cfg_token_tagger::tagger::PdaParser;
    let g = xmlrpc_grammar();
    let pda = PdaParser::new(&g);
    let tagger = TokenTagger::compile(&g, TaggerOptions::default()).unwrap();

    let mut gen = WorkloadGenerator::new(606).with_full_values();
    for _ in 0..6 {
        let m = gen.message(MessageKind::Honest);
        let r = pda.parse(&m.bytes);
        assert!(r.accepted, "{}", String::from_utf8_lossy(&m.bytes));
        let pda_spans: Vec<(usize, usize)> = r.events.iter().map(|e| (e.start, e.end)).collect();
        let tag_spans: Vec<(usize, usize)> =
            tagger.tag_fast(&m.bytes).iter().map(|e| (e.start, e.end)).collect();
        assert_eq!(pda_spans, tag_spans, "{}", String::from_utf8_lossy(&m.bytes));
    }

    // Exactness: the PDA rejects structurally broken messages that the
    // stackless tagger still partially tags.
    let broken = b"<methodCall><methodName>buy</methodName></methodCall>"; // missing params
    assert!(!pda.accepts(broken));
    assert!(!tagger.tag_fast(broken).is_empty());
}
