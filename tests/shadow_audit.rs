//! End-to-end shadow-audit invariants on a live ingest server.
//!
//! The audit lane's whole claim is *live correctness observability*:
//! mirror 1-in-N sessions off the fast path, replay them through the
//! scalar reference engine (divergence = correctness bug) and the
//! exact PDA parser (unconfirmed fire = a §3.5 false positive), and
//! surface the verdicts without ever blocking serving. Three
//! invariants pin that down:
//!
//! 1. a server whose bit-parallel decode ROM is deliberately corrupted
//!    must be *caught* — the auditor reports divergences and captures
//!    the evidence (byte window + both event streams) in the mismatch
//!    ring and `/mismatches.jsonl`;
//! 2. live precision on an XML-RPC workload must agree with an
//!    offline replay of the same frames (same engines, same parser)
//!    within one percentage point;
//! 3. with auditing unconfigured the server stays metrics-dark: no
//!    `cfgtag_audit_*` rows, dark `/audit.json`, empty
//!    `/mismatches.jsonl` — all still HTTP 200.

use cfg_grammar::builtin;
use cfg_obs::json::Json;
use cfg_obs::{AuditBank, SharedRegistry};
use cfg_obs_http::{http_get, http_get_status, Exporter, ServiceState};
use cfg_server::{AuditConfig, Client, IngestServer, Reply, ServerConfig};
use cfg_tagger::{EngineKind, PdaParser, TaggerOptions, TokenTagger};
use cfg_xmlrpc::workload::{MessageKind, WorkloadGenerator};
use cfg_xmlrpc::xmlrpc_grammar;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// Poll until the audit lane has drained `sessions` sampled sessions
/// (audited + shed), or panic after ~10 s — the lane is async, so the
/// client seeing its ACKs says nothing about replay progress.
fn wait_for_audited(bank: &AuditBank, sessions: u64) {
    for _ in 0..5000 {
        if bank.sessions_audited() + bank.sessions_shed() >= sessions {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!(
        "audit lane never drained: {} sampled, {} audited, {} shed",
        bank.sessions_sampled(),
        bank.sessions_audited(),
        bank.sessions_shed()
    );
}

#[test]
fn corrupted_decode_rom_is_caught_as_divergence_with_evidence() {
    // Zero the bit engine's class-ROM row for 'i': every token crossing
    // an 'i' dies in the production kernel while the scalar reference
    // (separate tables) still fires — a guaranteed divergence on any
    // if-then-else traffic.
    let t = TokenTagger::compile(&builtin::if_then_else(), TaggerOptions::default())
        .unwrap()
        .with_corrupted_rom_row(b'i');
    let registry = Arc::new(SharedRegistry::new());
    let state = Arc::new(ServiceState::new());
    let config = ServerConfig {
        engine: EngineKind::Bit,
        audit: Some(AuditConfig { sample_every: 1, ..AuditConfig::default() }),
        registry: Some(Arc::clone(&registry)),
        state: Some(Arc::clone(&state)),
        ..ServerConfig::default()
    };
    let server = IngestServer::start(&t, "127.0.0.1:0", config).unwrap();
    let exporter =
        Exporter::bind("127.0.0.1:0", Arc::clone(&registry), Arc::clone(&state)).unwrap();
    let metrics_addr = exporter.local_addr().to_string();

    let payload = b"if true then go else stop";
    let mut client = Client::connect(server.local_addr()).unwrap();
    for _ in 0..3 {
        assert!(matches!(client.request(payload).unwrap(), Reply::Acked { .. }));
    }
    client.close().unwrap();

    let bank = server.audit_bank().expect("audit configured");
    wait_for_audited(&bank, 1);
    assert_eq!(bank.sessions_sampled(), 1);
    assert!(bank.divergences() > 0, "corrupted ROM must diverge from the scalar reference");
    assert_eq!(bank.frames_audited(), 3);
    assert_eq!(bank.bytes_audited(), 3 * payload.len() as u64);

    // The flight recorder holds the evidence: the byte window around
    // the first differing event and both engines' event streams.
    let ring = server.mismatch_ring().expect("audit configured");
    assert!(!ring.is_empty(), "divergence must land in the mismatch ring");
    let (_, m) = ring.entries().into_iter().next().unwrap();
    assert!(!m.window.is_empty(), "mismatch must capture a byte window");
    assert!(
        payload.windows(m.window.len()).any(|w| w == &m.window[..]),
        "window must come from the audited payload"
    );
    assert_ne!(m.fast, m.reference, "the two event streams must actually differ");
    assert!(m.reference.len() > m.fast.len(), "the corrupted kernel drops fires, never adds them");

    // The same evidence serves over HTTP, one JSON object per line.
    let dump = http_get(&metrics_addr, "/mismatches.jsonl").unwrap();
    let first = dump.lines().next().expect("at least one mismatch line");
    let v = Json::parse(first).unwrap();
    assert_eq!(v.get("session").and_then(Json::as_u64), Some(m.session));
    assert!(!v.get("reference").unwrap().as_array().unwrap().is_empty(), "{first}");

    // And the scrape carries the counter.
    let metrics = http_get(&metrics_addr, "/metrics").unwrap();
    assert!(metrics.contains("cfgtag_audit_divergences_total"), "{metrics}");

    server.shutdown();
    exporter.stop();
}

#[test]
fn live_precision_matches_offline_replay_within_one_point() {
    // Honest XML-RPC traffic plus truncated documents: the exact
    // parser rejects a cut-off message, so every fire in it counts as
    // a false positive — a workload with a known, non-trivial
    // precision.
    let t = TokenTagger::compile(&xmlrpc_grammar(), TaggerOptions::default()).unwrap();
    let mut gen = WorkloadGenerator::new(0xAD17);
    let mut payloads: Vec<Vec<u8>> = Vec::new();
    for i in 0..20 {
        let mut bytes = gen.message(MessageKind::Honest).bytes;
        if i % 4 == 0 {
            bytes.truncate(bytes.len() / 2);
        }
        payloads.push(bytes);
    }

    // Offline ground truth: the same per-frame replay the audit lane
    // runs — a fresh production engine per frame, fires confirmed
    // against the PDA's derivation when the document is accepted.
    let pda = PdaParser::new(t.grammar());
    let mut fires_total = 0u64;
    let mut fires_confirmed = 0u64;
    for payload in &payloads {
        let mut engine = t.engine(EngineKind::Bit).unwrap();
        let mut fast = engine.feed(payload).unwrap();
        fast.extend(engine.finish().unwrap());
        let verdict = pda.parse(payload);
        let confirmed: HashSet<(u32, usize, usize)> = if verdict.accepted {
            verdict.events.iter().map(|e| (e.token.0, e.start, e.end)).collect()
        } else {
            HashSet::new()
        };
        fires_total += fast.len() as u64;
        fires_confirmed +=
            fast.iter().filter(|e| confirmed.contains(&(e.token.0, e.start, e.end))).count() as u64;
    }
    assert!(fires_total > 0, "workload must produce fires");
    assert!(fires_confirmed < fires_total, "truncation must produce false positives");
    let offline_pct = fires_confirmed as f64 / fires_total as f64 * 100.0;

    let registry = Arc::new(SharedRegistry::new());
    let state = Arc::new(ServiceState::new());
    let config = ServerConfig {
        engine: EngineKind::Bit,
        audit: Some(AuditConfig { sample_every: 1, ..AuditConfig::default() }),
        registry: Some(Arc::clone(&registry)),
        state: Some(Arc::clone(&state)),
        ..ServerConfig::default()
    };
    let server = IngestServer::start(&t, "127.0.0.1:0", config).unwrap();
    let exporter =
        Exporter::bind("127.0.0.1:0", Arc::clone(&registry), Arc::clone(&state)).unwrap();
    let metrics_addr = exporter.local_addr().to_string();

    let mut client = Client::connect(server.local_addr()).unwrap();
    for payload in &payloads {
        assert!(matches!(client.request(payload).unwrap(), Reply::Acked { .. }));
    }
    client.close().unwrap();

    let bank = server.audit_bank().expect("audit configured");
    wait_for_audited(&bank, 1);
    assert_eq!(bank.sessions_shed(), 0, "one queued session must never shed");
    assert_eq!(bank.frames_audited(), payloads.len() as u64);
    assert_eq!(bank.divergences(), 0, "a healthy tagger must not diverge");

    let body = http_get(&metrics_addr, "/audit.json").unwrap();
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("enabled").and_then(Json::as_bool), Some(true), "{body}");
    let live_pct = v.get("precision_pct").and_then(Json::as_f64).expect("fires were audited");
    assert!(
        (live_pct - offline_pct).abs() < 1.0,
        "live precision {live_pct:.3}% vs offline replay {offline_pct:.3}%: \
         must agree within one percentage point\n{body}"
    );
    let fp_rows = v.get("false_positives").unwrap().as_array().unwrap();
    assert!(!fp_rows.is_empty(), "truncated documents must surface per-token FP rows: {body}");

    server.shutdown();
    exporter.stop();
}

#[test]
fn audit_off_keeps_the_serving_path_metrics_dark() {
    let t = TokenTagger::compile(&builtin::if_then_else(), TaggerOptions::default()).unwrap();
    let registry = Arc::new(SharedRegistry::new());
    let state = Arc::new(ServiceState::new());
    let config = ServerConfig {
        registry: Some(Arc::clone(&registry)),
        state: Some(Arc::clone(&state)),
        ..ServerConfig::default()
    };
    let server = IngestServer::start(&t, "127.0.0.1:0", config).unwrap();
    let exporter =
        Exporter::bind("127.0.0.1:0", Arc::clone(&registry), Arc::clone(&state)).unwrap();
    let metrics_addr = exporter.local_addr().to_string();

    let mut client = Client::connect(server.local_addr()).unwrap();
    assert!(matches!(client.request(b"if a then b else c").unwrap(), Reply::Acked { .. }));
    client.close().unwrap();

    assert!(server.audit_bank().is_none());
    assert!(server.mismatch_ring().is_none());

    // Unconfigured is a state, not an error: both endpoints answer 200.
    let (status, body) = http_get_status(&metrics_addr, "/audit.json").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("enabled").and_then(Json::as_bool), Some(false), "{body}");

    let (status, body) = http_get_status(&metrics_addr, "/mismatches.jsonl").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, "");

    let metrics = http_get(&metrics_addr, "/metrics").unwrap();
    assert!(!metrics.contains("cfgtag_audit_"), "audit-off scrape must stay dark: {metrics}");

    server.shutdown();
    exporter.stop();
}
