//! Golden-file test for the VHDL emitter: the generated text for the
//! Figure 1 balanced-parenthesis tagger is pinned byte-for-byte so that
//! refactors of the generator or emitter cannot silently change the
//! emitted hardware. Regenerate with
//! `cargo run --example vhdl_export > tests/golden/balanced_parens.vhdl`
//! and review the diff when an intentional change lands.

use cfg_token_tagger::grammar::builtin;
use cfg_token_tagger::hwgen::vhdl::emit_vhdl;
use cfg_token_tagger::hwgen::{generate, GeneratorOptions};

#[test]
fn balanced_parens_vhdl_matches_golden() {
    let hw = generate(&builtin::balanced_parens(), &GeneratorOptions::default()).unwrap();
    let vhdl = emit_vhdl(&hw.netlist, "cfg_token_tagger");
    let golden = include_str!("golden/balanced_parens.vhdl");
    assert_eq!(
        vhdl, golden,
        "generated VHDL drifted from the golden file; \
         regenerate and review the diff if intentional"
    );
}

#[test]
fn generation_is_deterministic() {
    // Two runs of the full pipeline produce byte-identical netlists —
    // a property the golden test (and any hardware flow) relies on.
    let a = generate(&builtin::if_then_else(), &GeneratorOptions::default()).unwrap();
    let b = generate(&builtin::if_then_else(), &GeneratorOptions::default()).unwrap();
    assert_eq!(emit_vhdl(&a.netlist, "x"), emit_vhdl(&b.netlist, "x"));
    assert_eq!(a.netlist.len(), b.netlist.len());
    assert_eq!(a.slots.codes, b.slots.codes);
}
