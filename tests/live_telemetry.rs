//! End-to-end live telemetry: `cfgtag serve`'s streaming core feeding a
//! looping XML-RPC workload while the exporter is scraped over real
//! sockets — the PR's acceptance scenario, minus process spawning.
//!
//! Covers: monotonic counters across mid-stream scrapes, decision-
//! latency quantiles in `/metrics`, a well-formed `/report.json`, and
//! the post-mortem flight dump (with `dead_entry` trace events) when
//! the stream goes dead without recovery.

use cfg_cli::serve::{run_serve, ServeFlags};
use cfg_obs::json::Json;
use cfg_obs_http::http_get;
use cfg_xmlrpc::grammar::XMLRPC_GRAMMAR_TEXT;
use cfg_xmlrpc::workload::{MessageKind, WorkloadGenerator};
use std::io::Read;
use std::sync::mpsc;
use std::time::Duration;

/// Yields a buffer in small chunks, blocking at each gate offset until
/// the test signals it on — so scrapes land at deterministic points of
/// the stream instead of racing the reader to EOF.
struct GatedReader {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
    /// `(offset, gate)` pairs, ascending: delivery pauses at `offset`
    /// until the gate receives.
    gates: Vec<(usize, mpsc::Receiver<()>)>,
}

impl Read for GatedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        if let Some((offset, _)) = self.gates.first() {
            if self.pos >= *offset {
                let (_, gate) = self.gates.remove(0);
                let _ = gate.recv();
            }
        }
        let mut limit = self.data.len();
        if let Some((offset, _)) = self.gates.first() {
            limit = limit.min(*offset);
        }
        let n = buf.len().min(self.chunk).min(limit - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Scrape `/report.json` until `pred` holds on the body (or panic).
fn poll_report(addr: &str, what: &str, pred: impl Fn(&Json) -> bool) -> Json {
    for _ in 0..400 {
        if let Ok(body) = http_get(addr, "/report.json") {
            if let Ok(v) = Json::parse(&body) {
                if pred(&v) {
                    return v;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what} at {addr}");
}

fn merged_counter(v: &Json, name: &str) -> u64 {
    v.get("stats")
        .and_then(|s| s.get("merged"))
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// The value of one Prometheus series in a scrape body.
fn series(body: &str, id: &str) -> Option<f64> {
    body.lines()
        .find(|l| l.starts_with(id) && l[id.len()..].starts_with(' '))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
}

#[test]
fn serve_exports_monotonic_counters_and_latency_quantiles_mid_stream() {
    // ~200 KB of honest XML-RPC traffic with delivery gates at 64 KB and
    // 128 KB, so the two scrapes observe the stream at known points.
    let mut gen = WorkloadGenerator::new(11);
    let mut data = Vec::new();
    while data.len() < 200 << 10 {
        data.extend_from_slice(&gen.message(MessageKind::Honest).bytes);
        data.push(b'\n');
    }
    let total_bytes = data.len() as u64;
    let (gate1_tx, gate1_rx) = mpsc::channel::<()>();
    let (gate2_tx, gate2_rx) = mpsc::channel::<()>();
    let reader = GatedReader {
        data,
        pos: 0,
        chunk: 2048,
        gates: vec![(64 << 10, gate1_rx), (128 << 10, gate2_rx)],
    };

    let flags = ServeFlags { recover: true, chunk: 2048, ..Default::default() };
    let (addr_tx, addr_rx) = mpsc::channel::<String>();
    let worker = std::thread::spawn(move || {
        run_serve(XMLRPC_GRAMMAR_TEXT, reader, &flags, &mut |line: &str| {
            if let Some(rest) = line.strip_prefix("serving http://") {
                if let Some(addr) = rest.split('/').next() {
                    let _ = addr_tx.send(addr.to_string());
                }
            }
        })
        .expect("serve runs")
    });
    let addr = addr_rx.recv_timeout(Duration::from_secs(30)).expect("exporter address");

    // First mid-stream sample: everything up to the 64 KB gate has been
    // fed and the reader is parked waiting on us.
    let r1 = poll_report(&addr, "bytes to flow", |v| merged_counter(v, "bytes_in") >= 64 << 10);
    let m1 = http_get(&addr, "/metrics").unwrap();
    assert_eq!(http_get(&addr, "/healthz").unwrap(), "ok\n");
    assert_eq!(http_get(&addr, "/readyz").unwrap(), "ready\n");

    // Open the gate; second sample lands strictly later in the stream.
    gate1_tx.send(()).unwrap();
    let r2 =
        poll_report(&addr, "more bytes to flow", |v| merged_counter(v, "bytes_in") >= 128 << 10);
    let m2 = http_get(&addr, "/metrics").unwrap();
    gate2_tx.send(()).unwrap();

    // Counters are monotonic between scrapes, in both JSON and
    // Prometheus views.
    for stat in ["bytes_in", "events_out"] {
        let (a, b) = (merged_counter(&r1, stat), merged_counter(&r2, stat));
        assert!(b > a, "{stat} not increasing mid-stream: {a} -> {b}");
        let id = format!("cfgtag_{stat}_total{{sink=\"engine\"}}");
        let (pa, pb) = (series(&m1, &id).unwrap(), series(&m2, &id).unwrap());
        assert!(pb >= pa, "{id} went backwards: {pa} -> {pb}");
        assert!(pa > 0.0, "{id} never moved");
    }

    // The decision-latency histogram is live: quantile gauges present
    // and the p99 is a positive number of nanoseconds.
    let p99 = series(&m2, "cfgtag_decision_latency_ns_quantile{quantile=\"0.99\"}")
        .expect("p99 decision latency exported");
    assert!(p99 > 0.0, "p99 = {p99}");
    assert!(m2.contains("# TYPE cfgtag_decision_latency_ns histogram"));

    // Serve metadata rides along in the report.
    let tokens = r2.get("meta").and_then(|m| m.get("tokens")).and_then(Json::as_array);
    assert!(tokens.is_some_and(|t| !t.is_empty()), "meta.tokens missing");

    let outcome = worker.join().expect("serve thread");
    assert_eq!(outcome.code, 0);
    assert_eq!(outcome.bytes, total_bytes);
    assert!(outcome.events > 0);
}

#[test]
fn killed_input_dumps_a_full_flight_recorder() {
    // A healthy looping workload whose input simply stops mid-run (the
    // producer was killed): serve mode treats stream end as the
    // post-mortem condition, so the flight dump captures the final ring.
    let mut gen = WorkloadGenerator::new(23);
    let mut data = Vec::new();
    for _ in 0..60 {
        data.extend_from_slice(&gen.message(MessageKind::Honest).bytes);
        data.push(b'\n');
    }
    let reader = std::io::Cursor::new(data);
    let flags = ServeFlags {
        recover: true,
        chunk: 1024,
        flight_out: Some("dump.jsonl".into()),
        ..Default::default()
    };
    let outcome = run_serve(XMLRPC_GRAMMAR_TEXT, reader, &flags, &mut |_| {}).unwrap();
    assert_eq!(outcome.code, 0);

    let (path, dump) = outcome.flight_dump.expect("flight dump at stream end");
    assert_eq!(path, "dump.jsonl");
    let lines: Vec<&str> = dump.lines().collect();
    assert!(lines.len() >= 256, "flight dump too small: {} events", lines.len());
    assert!(dump.contains("\"kind\":\"token_fire\""), "no token_fire events in dump");
    // Every line is valid JSON with a sequence number.
    for l in &lines {
        let v = Json::parse(l).unwrap_or_else(|e| panic!("bad dump line {l:?}: {e}"));
        assert!(v.get("seq").and_then(Json::as_u64).is_some());
    }
}

#[test]
fn dead_stream_exits_3_with_dead_entry_in_the_dump() {
    // Bytes the XML-RPC grammar cannot start a message with; recovery
    // is off, so the machine dies and serve takes exit code 3.
    let mut data = Vec::new();
    let mut gen = WorkloadGenerator::new(5);
    data.extend_from_slice(&gen.message(MessageKind::Honest).bytes);
    data.extend_from_slice(&[b'\0'; 64]);
    let reader = std::io::Cursor::new(data);
    let flags =
        ServeFlags { chunk: 512, flight_out: Some("dead.jsonl".into()), ..Default::default() };
    let outcome = run_serve(XMLRPC_GRAMMAR_TEXT, reader, &flags, &mut |_| {}).unwrap();
    assert_eq!(outcome.code, 3, "dead stream without recovery must exit 3");
    let (_, dump) = outcome.flight_dump.expect("flight dump on death");
    assert!(dump.contains("\"kind\":\"dead_entry\""), "no dead_entry in dump:\n{dump}");
}
