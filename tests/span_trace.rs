//! End-to-end tracing invariants on a live ingest server.
//!
//! With tracing enabled, every acked frame must decompose into
//! monotonic, non-negative stage durations that sum *exactly* to its
//! end-to-end latency, and the live `/slo.json` and `/spans.jsonl`
//! endpoints must agree with the server's own tracker.

use cfg_grammar::builtin;
use cfg_obs::json::Json;
use cfg_obs::{SharedRegistry, Stage};
use cfg_obs_http::{http_get, Exporter, ServiceState};
use cfg_server::{Client, IngestServer, Reply, ServerConfig, TraceConfig};
use cfg_tagger::{TaggerOptions, TokenTagger};
use std::sync::Arc;
use std::time::Duration;

fn tagger() -> TokenTagger {
    TokenTagger::compile(&builtin::if_then_else(), TaggerOptions::default()).unwrap()
}

/// Wait until the tracker has folded in `want` spans — the ack is
/// written a moment before the span is recorded, so the last frame's
/// span can trail its ack.
fn await_total(metrics_addr: &str, want: u64) -> Json {
    for _ in 0..200 {
        let body = http_get(metrics_addr, "/slo.json").unwrap();
        let v = Json::parse(&body).unwrap();
        if v.get("total").and_then(Json::as_u64) >= Some(want) {
            return v;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("SLO tracker never reached {want} observed frames");
}

#[test]
fn every_acked_frame_decomposes_into_stage_durations() {
    const MESSAGES: u64 = 40;
    let t = tagger();
    let registry = Arc::new(SharedRegistry::new());
    let state = Arc::new(ServiceState::new());
    let config = ServerConfig {
        registry: Some(Arc::clone(&registry)),
        state: Some(Arc::clone(&state)),
        trace: Some(TraceConfig {
            sample_every: 1,
            slo_ms: 250,
            ring: 1024,
            ..TraceConfig::default()
        }),
        ..ServerConfig::default()
    };
    let server = IngestServer::start(&t, "127.0.0.1:0", config).unwrap();
    let exporter =
        Exporter::bind("127.0.0.1:0", Arc::clone(&registry), Arc::clone(&state)).unwrap();
    let metrics_addr = exporter.local_addr().to_string();

    let corpus: [&[u8]; 4] =
        [b"if true then go else stop", b"go", b"stop stop go", b"zzz not grammar zzz"];
    let mut client = Client::connect(server.local_addr()).unwrap();
    for i in 0..MESSAGES {
        match client.request(corpus[(i % 4) as usize]).unwrap() {
            Reply::Acked { seq, .. } => assert_eq!(u64::from(seq), i),
            other => panic!("frame {i} not acked: {other:?}"),
        }
    }

    let slo = await_total(&metrics_addr, MESSAGES);

    // /spans.jsonl: one well-formed span per acked frame (sampling is
    // 1-in-1 and the ring is larger than the run).
    let spans_body = http_get(&metrics_addr, "/spans.jsonl").unwrap();
    let lines: Vec<&str> = spans_body.lines().collect();
    assert_eq!(lines.len() as u64, MESSAGES, "one retained span per acked frame");
    for line in &lines {
        let v = Json::parse(line).unwrap();
        let total = v.get("total_ns").unwrap().as_u64().expect("total_ns is a u64");
        assert!(total > 0, "zero-length span: {line}");
        let stages = v.get("stages").unwrap().as_object().unwrap();
        // Every serving stage is present for an acked frame, in
        // pipeline order, each duration a non-negative integer.
        let expected: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        let got: Vec<&str> = stages.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(got, expected, "stage set/order wrong in {line}");
        let sum: u64 = stages.iter().map(|(_, v)| v.as_u64().expect("stage ns is u64")).sum();
        assert_eq!(sum, total, "stage durations must sum to end-to-end in {line}");
    }

    // /slo.json agrees with the server's own tracker, full-fidelity.
    assert_eq!(slo.get("total").unwrap().as_u64(), Some(MESSAGES));
    assert_eq!(slo.get("e2e").unwrap().get("count").unwrap().as_u64(), Some(MESSAGES));
    let stage_obj = slo.get("stages").unwrap();
    for stage in Stage::ALL {
        let s = stage_obj.get(stage.name()).unwrap();
        assert_eq!(
            s.get("count").unwrap().as_u64(),
            Some(MESSAGES),
            "stage {} not observed for every frame",
            stage.name()
        );
        let p50 = s.get("p50_ns").unwrap().as_u64().unwrap();
        let p999 = s.get("p999_ns").unwrap().as_u64().unwrap();
        assert!(p50 <= p999, "quantiles out of order for {}", stage.name());
    }
    let tracker = server.slo_tracker().expect("tracing configured");
    assert_eq!(tracker.snapshot().total, MESSAGES);

    client.close().unwrap();
    server.shutdown();
    exporter.stop();
}

#[test]
fn head_sampling_throttles_the_ring_but_not_the_slo() {
    const MESSAGES: u64 = 20;
    let t = tagger();
    let registry = Arc::new(SharedRegistry::new());
    let state = Arc::new(ServiceState::new());
    let config = ServerConfig {
        registry: Some(Arc::clone(&registry)),
        state: Some(Arc::clone(&state)),
        // Huge objective: nothing is "slow", so retention is purely
        // the deterministic 1-in-8 head sample (span ids 0, 8, 16).
        trace: Some(TraceConfig {
            sample_every: 8,
            slo_ms: 60_000,
            ring: 64,
            ..TraceConfig::default()
        }),
        ..ServerConfig::default()
    };
    let server = IngestServer::start(&t, "127.0.0.1:0", config).unwrap();
    let exporter =
        Exporter::bind("127.0.0.1:0", Arc::clone(&registry), Arc::clone(&state)).unwrap();
    let metrics_addr = exporter.local_addr().to_string();

    let mut client = Client::connect(server.local_addr()).unwrap();
    for _ in 0..MESSAGES {
        assert!(matches!(client.request(b"go").unwrap(), Reply::Acked { .. }));
    }
    let slo = await_total(&metrics_addr, MESSAGES);
    assert_eq!(slo.get("total").unwrap().as_u64(), Some(MESSAGES), "SLO sees every frame");

    let spans_body = http_get(&metrics_addr, "/spans.jsonl").unwrap();
    let ids: Vec<u64> = spans_body
        .lines()
        .map(|l| Json::parse(l).unwrap().get("id").unwrap().as_u64().unwrap())
        .collect();
    assert_eq!(ids, vec![0, 8, 16], "ring holds exactly the head-sampled spans");

    client.close().unwrap();
    server.shutdown();
    exporter.stop();
}
