//! End-to-end circuit introspection: `cfgtag serve`'s streaming core
//! with the probe layer attached, scraped over real sockets by the
//! same client pieces `cfgtag scope` uses.
//!
//! Covers the PR's acceptance scenario: `/circuit.json` and
//! `/probes.json` agree probe-for-probe, per-tokenizer fire counts and
//! FOLLOW-edge activations are nonzero under honest traffic, the
//! heat-annotated DOT export colors hot elements, and an armed
//! `--trigger token:<name>` capture dumps a JSONL window containing
//! the triggering event.

use cfg_cli::scope::{parse_circuit, parse_probes, render_heat_dot, render_scope};
use cfg_cli::serve::{run_serve, ServeFlags};
use cfg_obs::json::Json;
use cfg_obs_http::{http_get, http_get_status};
use std::io::Read;
use std::sync::mpsc;
use std::time::Duration;

const ITE: &str = r#"
    %%
    E: "if" C "then" E "else" E | "go" | "stop";
    C: "true" | "false";
    %%
"#;

/// Yields a buffer in small chunks, parking at each gate offset until
/// signalled — so the test can inspect probe/capture state at known
/// points of the stream while the exporter is still up (it shuts down
/// at EOF).
struct GatedReader {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
    /// Ascending `(offset, release)` pairs; the front gate parks reads.
    gates: Vec<(usize, mpsc::Receiver<()>)>,
    /// Signalled just before blocking on a gate, so the test can wait
    /// for the stream to be *provably* parked instead of racing it.
    parked: mpsc::Sender<()>,
}

impl Read for GatedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        if self.gates.first().is_some_and(|(at, _)| self.pos >= *at) {
            let (_, gate) = self.gates.remove(0);
            let _ = self.parked.send(());
            let _ = gate.recv();
        }
        let limit = self.gates.first().map_or(self.data.len(), |(at, _)| *at);
        let n = buf.len().min(self.chunk).min(limit - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn poll_until(addr: &str, what: &str, pred: impl Fn(&str) -> bool) -> String {
    for _ in 0..400 {
        if let Ok(body) = http_get(addr, "/probes.json") {
            if pred(&body) {
                return body;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what} at {addr}");
}

#[test]
fn scope_sees_fires_edges_and_a_triggered_capture() {
    // 400 copies of a fully-conforming sentence; the gate parks
    // delivery at ~1/4 so the first inspection happens mid-stream.
    let sentence = b"if true then go else stop ";
    let mut data = Vec::new();
    for _ in 0..400 {
        data.extend_from_slice(sentence);
    }
    let (gate1_at, gate2_at) = (data.len() / 4, data.len() / 2);
    let (gate1_tx, gate1_rx) = mpsc::channel::<()>();
    let (gate2_tx, gate2_rx) = mpsc::channel::<()>();
    let (parked_tx, parked_rx) = mpsc::channel::<()>();
    let reader = GatedReader {
        data,
        pos: 0,
        chunk: 256,
        gates: vec![(gate1_at, gate1_rx), (gate2_at, gate2_rx)],
        parked: parked_tx,
    };

    let flags = ServeFlags { recover: true, chunk: 256, ..Default::default() };
    let (addr_tx, addr_rx) = mpsc::channel::<String>();
    let worker = std::thread::spawn(move || {
        run_serve(ITE, reader, &flags, &mut |line: &str| {
            if let Some(rest) = line.strip_prefix("serving http://") {
                if let Some(addr) = rest.split('/').next() {
                    let _ = addr_tx.send(addr.to_string());
                }
            }
        })
        .expect("serve runs")
    });
    let addr = addr_rx.recv_timeout(Duration::from_secs(30)).expect("exporter address");

    // Wait until the reader is provably parked at gate 1 — every fire
    // of the first quarter is registered and, crucially, no new events
    // can land between arming the trigger below and checking that the
    // capture is still pending.
    parked_rx.recv_timeout(Duration::from_secs(30)).expect("stream parks at gate 1");
    let probes_body = poll_until(&addr, "token fires", |body| {
        parse_probes(body).is_ok_and(|p| {
            p.iter().any(|(id, c)| id.starts_with("tok/") && id.ends_with("/fire") && *c > 0)
        })
    });
    let probes = parse_probes(&probes_body).unwrap();
    let circuit = parse_circuit(&http_get(&addr, "/circuit.json").unwrap()).unwrap();

    // Acceptance: /circuit.json probe ids match /probes.json 1:1, in
    // order.
    let served_ids: Vec<String> = probes.iter().map(|(id, _)| id.clone()).collect();
    assert_eq!(circuit.probe_ids(), served_ids, "circuit/probes id mismatch");

    // Acceptance: nonzero per-tokenizer fire counts — every token of
    // the sentence has fired by now — and ≥1 FOLLOW-edge activation.
    let count = |id: &str| probes.iter().find(|(p, _)| p == id).map(|(_, c)| *c).unwrap_or(0);
    for tok in ["if", "true", "then", "go", "else", "stop"] {
        assert!(count(&format!("tok/{tok}/fire")) > 0, "tok/{tok}/fire never fired\n{probes:?}");
    }
    let edge_pulses: u64 =
        probes.iter().filter(|(id, _)| id.starts_with("follow/")).map(|(_, c)| *c).sum();
    assert!(edge_pulses > 0, "no FOLLOW-edge activations\n{probes:?}");
    assert!(count("follow/if->true") > 0, "follow/if->true idle\n{probes:?}");

    // The scope frame renders fires and edges; the heat DOT colors the
    // hot tokenizers away from white. (Top-K wide enough that token
    // probes rank despite byte-level decoder counts dominating.)
    let frame = render_scope(&circuit, &probes, None, 1.0, 50);
    assert!(frame.contains("tok/"), "{frame}");
    assert!(frame.contains("if -> true"), "{frame}");
    let dot = render_heat_dot(&circuit, &probes);
    assert!(dot.contains("fillcolor=\"#ff0000\""), "no saturated element:\n{dot}");

    // The Prometheus view carries the same probes with escaped labels.
    let metrics = http_get(&addr, "/metrics").unwrap();
    assert!(metrics.contains("cfgtag_probe_total{probe=\"tok/go/fire\"}"), "{metrics}");
    assert!(
        metrics
            .lines()
            .any(|l| l.contains("cfgtag_token_fires_total") && l.contains("name=\"go\"")),
        "token fires missing name labels"
    );

    // Arm an ILA-style trigger on "go", then release the gate: the
    // remaining 3/4 of the stream fires it almost immediately.
    let (status, body) = http_get_status(&addr, "/trigger?cond=token:go&pre=4&post=2").unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = http_get_status(&addr, "/capture.jsonl").unwrap();
    assert_eq!(status, 503, "capture should be pending, got: {body}");

    // Release gate 1: the stream runs to gate 2 (another ~1/4 of the
    // data), firing the trigger and filling the post window, then
    // parks again so the exporter is guaranteed alive for the poll.
    gate1_tx.send(()).unwrap();
    let mut capture = None;
    for _ in 0..400 {
        if let Ok((200, jsonl)) = http_get_status(&addr, "/capture.jsonl") {
            capture = Some(jsonl);
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let capture = capture.expect("trigger fired and capture completed");

    // Acceptance: the window is valid JSONL and contains the triggering
    // token_fire for "go" (the token index the circuit names "go").
    let go_index = circuit.tokens.iter().position(|(name, _, _)| name == "go").unwrap();
    let mut saw_trigger = false;
    for line in capture.lines() {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("bad capture line {line:?}: {e}"));
        assert!(v.get("seq").and_then(Json::as_u64).is_some());
        if v.get("kind").and_then(Json::as_str) == Some("token_fire")
            && v.get("token").and_then(Json::as_u64) == Some(go_index as u64)
        {
            saw_trigger = true;
        }
    }
    assert!(saw_trigger, "capture window lacks the triggering event:\n{capture}");
    assert!(capture.lines().count() <= 4 + 1 + 2, "window larger than pre+1+post");

    gate2_tx.send(()).unwrap();
    let outcome = worker.join().expect("serve thread");
    assert_eq!(outcome.code, 0);
    assert!(outcome.events > 0);
}
