//! End-to-end saturation-telemetry invariants on a live ingest server.
//!
//! With `--sample-hz`-style telemetry on, a pipelined load against a
//! 2-shard server must surface as: non-trivial utilization in
//! `/shards.json`, engine-feed and idle lanes in `/profile.folded`,
//! and a Little's-law predicted queue wait that agrees (within 2×)
//! with the *measured* `queue_wait` p50 the tracing pipeline reports
//! in `/slo.json`. With telemetry off, all three endpoints must still
//! answer 200 — sampling-off is a configuration, not an error.

use cfg_grammar::builtin;
use cfg_obs::json::Json;
use cfg_obs::SharedRegistry;
use cfg_obs_http::{http_get, http_get_status, Exporter, ServiceState};
use cfg_server::{Client, IngestServer, Reply, SaturationConfig, ServerConfig, TraceConfig};
use cfg_tagger::{TaggerOptions, TokenTagger};
use std::sync::Arc;
use std::time::Duration;

fn tagger() -> TokenTagger {
    TokenTagger::compile(&builtin::if_then_else(), TaggerOptions::default()).unwrap()
}

#[test]
fn pipelined_load_surfaces_utilization_profile_and_littles_law() {
    // Enough frames and payload to hold a deep queue for many sampler
    // ticks: the telemetry derives rates from the snapshot window, so
    // the load must outlive a few intervals.
    const MESSAGES: u32 = 400;
    const WINDOW: u32 = 64;
    let payload = b"if true then go else stop ".repeat(512); // ~13 KB

    let t = tagger();
    let registry = Arc::new(SharedRegistry::new());
    let state = Arc::new(ServiceState::new());
    let config = ServerConfig {
        shards: 2,
        queue_depth: 2 * WINDOW as usize,
        trace: Some(TraceConfig {
            sample_every: u64::from(MESSAGES),
            slo_ms: 60_000,
            ring: 16,
            ..TraceConfig::default()
        }),
        saturation: Some(SaturationConfig { sample_hz: 200, interval_ms: 1, history: 8192 }),
        registry: Some(Arc::clone(&registry)),
        state: Some(Arc::clone(&state)),
        ..ServerConfig::default()
    };
    let server = IngestServer::start(&t, "127.0.0.1:0", config).unwrap();
    let exporter =
        Exporter::bind("127.0.0.1:0", Arc::clone(&registry), Arc::clone(&state)).unwrap();
    let metrics_addr = exporter.local_addr().to_string();

    // Pipelined load: keep WINDOW frames in flight so the shard queue
    // stays deep. One session has affinity to one shard — the other
    // shard stays idle, which is exactly what gives the profiler a
    // guaranteed idle lane to sample.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut sent = 0u32;
    let mut acked = 0u32;
    while acked < MESSAGES {
        while sent < MESSAGES && sent - acked < WINDOW {
            client.send(&payload).unwrap();
            sent += 1;
        }
        match client.recv().unwrap() {
            Reply::Acked { .. } => acked += 1,
            other => panic!("frame {acked} not acked: {other:?}"),
        }
    }

    // Read the gauges immediately, while the snapshot window is still
    // dominated by the loaded period.
    let shards_body = http_get(&metrics_addr, "/shards.json").unwrap();
    let v = Json::parse(&shards_body).unwrap();
    let rows = v.get("shards").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 2, "{shards_body}");
    let util = |row: &Json| row.get("utilization_pct").unwrap().as_f64().unwrap();
    let busy =
        rows.iter().max_by(|a, b| util(a).partial_cmp(&util(b)).unwrap()).expect("two shard rows");
    assert!(
        util(busy) > 0.0 && util(busy) <= 100.0,
        "busy shard utilization must land in (0,100]: {shards_body}"
    );
    let arrivals: f64 =
        rows.iter().map(|r| r.get("arrivals_per_sec").unwrap().as_f64().unwrap()).sum();
    assert!(arrivals > 0.0, "{shards_body}");

    // Little's law: the busy shard's predicted queue wait must agree
    // with the measured queue_wait p50 within 2×. Both describe the
    // same sustained, saturated window, so W_q = L̄_q / λ holds.
    let predicted = busy.get("predicted_wait_ns").unwrap().as_f64().unwrap();
    assert!(predicted > 0.0, "{shards_body}");
    let slo_body = http_get(&metrics_addr, "/slo.json").unwrap();
    let slo = Json::parse(&slo_body).unwrap();
    let measured = slo
        .get("stages")
        .and_then(|s| s.get("queue_wait"))
        .and_then(|q| q.get("p50_ns"))
        .and_then(Json::as_u64)
        .expect("traced server reports queue_wait p50") as f64;
    assert!(measured > 0.0, "{slo_body}");
    let ratio = predicted / measured;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "Little's-law prediction off by more than 2x: predicted {predicted}ns, \
         measured p50 {measured}ns (ratio {ratio:.3})\nshards: {shards_body}\nslo: {slo_body}"
    );

    // The ring dump holds ordered snapshots with a deep queue visible
    // somewhere in the history.
    let series_body = http_get(&metrics_addr, "/timeseries.json").unwrap();
    let series = Json::parse(&series_body).unwrap();
    let samples = series.get("samples").unwrap().as_array().unwrap();
    assert!(samples.len() >= 2, "{series_body}");
    let depths: Vec<u64> = samples
        .iter()
        .map(|s| {
            s.get("shards")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|sh| sh.get("queue_depth").unwrap().as_u64().unwrap())
                .sum()
        })
        .collect();
    assert!(
        depths.iter().any(|&d| d > 1),
        "pipelined load never showed a queue in the ring: {depths:?}"
    );

    // The folded profile attributes worker time: the busy shard was
    // sampled feeding the engine, the idle shard waiting for work.
    let folded = http_get(&metrics_addr, "/profile.folded").unwrap();
    assert!(folded.contains("engine;bit "), "no engine lane sampled: {folded}");
    assert!(folded.contains("idle;bit "), "no idle lane sampled: {folded}");

    // The server-side accessors expose the same sources the endpoints
    // serve.
    assert_eq!(server.shard_loads().expect("saturation configured").shards(), 2);
    assert!(server.profiler().expect("saturation configured").samples() > 0);
    assert!(!server.timeseries().expect("saturation configured").is_empty());

    client.close().unwrap();
    server.shutdown();
    exporter.stop();
}

#[test]
fn sampling_off_keeps_all_three_endpoints_answering() {
    let t = tagger();
    let registry = Arc::new(SharedRegistry::new());
    let state = Arc::new(ServiceState::new());
    let config = ServerConfig {
        registry: Some(Arc::clone(&registry)),
        state: Some(Arc::clone(&state)),
        ..ServerConfig::default()
    };
    let server = IngestServer::start(&t, "127.0.0.1:0", config).unwrap();
    let exporter =
        Exporter::bind("127.0.0.1:0", Arc::clone(&registry), Arc::clone(&state)).unwrap();
    let metrics_addr = exporter.local_addr().to_string();

    let mut client = Client::connect(server.local_addr()).unwrap();
    assert!(matches!(client.request(b"go").unwrap(), Reply::Acked { .. }));

    let (status, body) = http_get_status(&metrics_addr, "/shards.json").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("shards").unwrap().as_array().unwrap().len(), 0, "{body}");

    let (status, body) = http_get_status(&metrics_addr, "/timeseries.json").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("samples").unwrap().as_array().unwrap().len(), 0, "{body}");

    let (status, body) = http_get_status(&metrics_addr, "/profile.folded").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, "");

    assert!(server.shard_loads().is_none());
    assert!(server.timeseries().is_none());
    assert!(server.profiler().is_none());

    client.close().unwrap();
    server.shutdown();
    exporter.stop();
}

/// The sampler keeps ticking while the pool is quiet — the window just
/// shows zero rates, not an error or a stale ring.
#[test]
fn idle_server_reports_zero_rates_not_errors() {
    let t = tagger();
    let registry = Arc::new(SharedRegistry::new());
    let state = Arc::new(ServiceState::new());
    let config = ServerConfig {
        saturation: Some(SaturationConfig { sample_hz: 50, interval_ms: 1, history: 64 }),
        registry: Some(Arc::clone(&registry)),
        state: Some(Arc::clone(&state)),
        ..ServerConfig::default()
    };
    let server = IngestServer::start(&t, "127.0.0.1:0", config).unwrap();
    let exporter =
        Exporter::bind("127.0.0.1:0", Arc::clone(&registry), Arc::clone(&state)).unwrap();
    let metrics_addr = exporter.local_addr().to_string();

    // Wait for the sampler to build a window.
    let series = server.timeseries().expect("saturation configured");
    for _ in 0..500 {
        if series.len() >= 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(series.len() >= 2, "sampler never ticked");

    let body = http_get(&metrics_addr, "/shards.json").unwrap();
    let v = Json::parse(&body).unwrap();
    for row in v.get("shards").unwrap().as_array().unwrap() {
        assert_eq!(row.get("queue_depth").unwrap().as_u64(), Some(0), "{body}");
        assert_eq!(row.get("arrivals_per_sec").unwrap().as_f64(), Some(0.0), "{body}");
        assert_eq!(row.get("predicted_wait_ns").unwrap().as_f64(), Some(0.0), "{body}");
    }

    server.shutdown();
    exporter.stop();
}
